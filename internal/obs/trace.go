package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one protocol phase of a query: wall time plus the traffic and
// operation counts attributed to it.
type Span struct {
	// Phase is the protocol step label, e.g. "secure-comparison(4)".
	Phase string
	// Start is when the phase opened.
	Start time.Time
	// Duration is the phase wall time (zero while the span is open).
	Duration time.Duration
	// BytesSent / BytesReceived are the peer-link traffic attributed to
	// the phase (bridged from the transport meter).
	BytesSent     int64
	BytesReceived int64
	// MsgsSent / MsgsReceived count peer-link frames.
	MsgsSent     int64
	MsgsReceived int64
	// Rounds counts completed send→receive volleys in the phase.
	Rounds int64
	// Ops counts watched operations (e.g. paillier_encrypt) that ran
	// while the span was open. In an in-process simulation both servers
	// share the process-wide counters, so Ops covers both parties.
	Ops map[string]int64
	// Err records the failure that ended the phase, if any.
	Err string
}

// TraceEvent is a point annotation recorded during a query — a quorum
// verdict, a threshold correction δ, anything that happened at an instant
// rather than over a phase. Like spans, events carry quantities only.
type TraceEvent struct {
	// Time is when the event happened.
	Time time.Time
	// Type names the event (journal Event* constants).
	Type string
	// Detail is the human-readable payload, e.g. "delta=12".
	Detail string
}

// QueryTrace is the structured record of one protocol query: one span per
// phase, in execution order.
type QueryTrace struct {
	// ID identifies the query, e.g. "s1-q3".
	ID string
	// Start / Duration cover the whole query.
	Start    time.Time
	Duration time.Duration
	// Spans holds the per-phase records in the order the phases ran.
	Spans []Span
	// Events holds point annotations in recording order.
	Events []TraceEvent `json:",omitempty"`
	// Result is a short outcome label set by the caller, e.g.
	// "consensus label=4" or "no-consensus".
	Result string
	// Err is the failure that aborted the query, if any.
	Err string
	// Attempt is which delivery attempt of the query this trace records
	// (1 = first try). Retried instances produce one trace per attempt.
	Attempt int
	// Participants is how many users' submissions were aggregated into
	// this query; Dropped is how many configured users were excluded
	// (dropout, rejection, or quorum release). Zero Participants means
	// participation tracking was not set for this trace.
	Participants int
	Dropped      int
}

// TotalBytes sums the per-phase traffic.
func (q *QueryTrace) TotalBytes() (sent, received int64) {
	for _, s := range q.Spans {
		sent += s.BytesSent
		received += s.BytesReceived
	}
	return sent, received
}

// Span returns the span for a phase and whether it exists.
func (q *QueryTrace) Span(phase string) (Span, bool) {
	for _, s := range q.Spans {
		if s.Phase == phase {
			return s, true
		}
	}
	return Span{}, false
}

// Summary renders the trace as one log line: total time and traffic
// followed by per-phase timings. It contains only quantities — never
// plaintext values, shares or keys.
func (q *QueryTrace) Summary() string {
	var b strings.Builder
	sent, recvd := q.TotalBytes()
	fmt.Fprintf(&b, "query=%s total=%v tx=%dB rx=%dB result=%q", q.ID, q.Duration.Round(time.Microsecond), sent, recvd, q.Result)
	if q.Attempt > 1 {
		fmt.Fprintf(&b, " attempt=%d", q.Attempt)
	}
	if q.Dropped > 0 {
		fmt.Fprintf(&b, " participants=%d dropped=%d", q.Participants, q.Dropped)
	}
	if q.Err != "" {
		fmt.Fprintf(&b, " err=%q", q.Err)
	}
	for _, s := range q.Spans {
		fmt.Fprintf(&b, " %s=%v/%dB", s.Phase, s.Duration.Round(time.Microsecond), s.BytesSent+s.BytesReceived)
	}
	return b.String()
}

// Tracer records one QueryTrace. It is safe for concurrent use; phases are
// expected to open and close in protocol order (the engine runs them
// sequentially), but IO attribution may arrive from transport goroutines.
type Tracer struct {
	mu      sync.Mutex
	trace   QueryTrace
	open    string // phase of the currently open span, "" if none
	watched map[string]*Counter
	opsAt   map[string]int64 // watched counter values when the open span started
	clock   func() time.Time
}

// NewTracer starts a trace for one query.
func NewTracer(id string) *Tracer {
	t := &Tracer{
		watched: make(map[string]*Counter),
		clock:   time.Now,
	}
	t.trace.ID = id
	t.trace.Start = t.clock()
	return t
}

// Watch registers a counter whose per-phase deltas are recorded in each
// span's Ops map under the given short name. Call before the first phase.
func (t *Tracer) Watch(shortName string, c *Counter) {
	if c == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watched[shortName] = c
}

// SetAttempt records which delivery attempt this trace covers (1-based).
func (t *Tracer) SetAttempt(attempt int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trace.Attempt = attempt
}

// SetParticipants records how many users were aggregated into the traced
// query and how many were excluded.
func (t *Tracer) SetParticipants(participants, dropped int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trace.Participants = participants
	t.trace.Dropped = dropped
}

// RecordEvent appends a point annotation to the trace.
func (t *Tracer) RecordEvent(typ, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trace.Events = append(t.trace.Events, TraceEvent{Time: t.clock(), Type: typ, Detail: detail})
}

// StartPhase opens a span. An open span is implicitly ended first, so a
// failing phase that never reaches EndPhase still shows up as open (see
// OpenPhase) rather than silently vanishing.
func (t *Tracer) StartPhase(phase string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open != "" {
		t.endLocked(t.open, nil)
	}
	t.open = phase
	t.trace.Spans = append(t.trace.Spans, Span{Phase: phase, Start: t.clock()})
	if len(t.watched) > 0 {
		t.opsAt = make(map[string]int64, len(t.watched))
		for name, c := range t.watched {
			t.opsAt[name] = c.Value()
		}
	}
}

// EndPhase closes the named span, recording its duration, watched op deltas
// and (when err != nil) the failure.
func (t *Tracer) EndPhase(phase string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.endLocked(phase, err)
}

// endLocked closes the span if it is the open one. Callers hold mu.
func (t *Tracer) endLocked(phase string, err error) {
	if t.open != phase {
		return
	}
	t.open = ""
	s := &t.trace.Spans[len(t.trace.Spans)-1]
	s.Duration = t.clock().Sub(s.Start)
	if err != nil {
		s.Err = err.Error()
	}
	if len(t.watched) > 0 {
		s.Ops = make(map[string]int64, len(t.watched))
		for name, c := range t.watched {
			if d := c.Value() - t.opsAt[name]; d > 0 {
				s.Ops[name] = d
			}
		}
		if len(s.Ops) == 0 {
			s.Ops = nil
		}
	}
}

// OpenPhase returns the phase of the currently open span, or the phase of
// the last span that recorded an error, or "". Deploy uses it to name the
// failing phase in surfaced errors.
func (t *Tracer) OpenPhase() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open != "" {
		return t.open
	}
	for i := len(t.trace.Spans) - 1; i >= 0; i-- {
		if t.trace.Spans[i].Err != "" {
			return t.trace.Spans[i].Phase
		}
	}
	return ""
}

// SetPhaseIO attributes peer-link traffic to a phase's span, creating the
// span if the phase never opened (e.g. traffic metered outside any phase).
// The transport meter bridge calls this once per step after the run.
func (t *Tracer) SetPhaseIO(phase string, bytesSent, bytesReceived, msgsSent, msgsReceived, rounds int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.trace.Spans {
		if t.trace.Spans[i].Phase == phase {
			s := &t.trace.Spans[i]
			s.BytesSent = bytesSent
			s.BytesReceived = bytesReceived
			s.MsgsSent = msgsSent
			s.MsgsReceived = msgsReceived
			s.Rounds = rounds
			return
		}
	}
	t.trace.Spans = append(t.trace.Spans, Span{
		Phase:     phase,
		BytesSent: bytesSent, BytesReceived: bytesReceived,
		MsgsSent: msgsSent, MsgsReceived: msgsReceived,
		Rounds: rounds,
	})
}

// Finish closes any open span and seals the trace with a result label and
// optional error.
func (t *Tracer) Finish(result string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open != "" {
		t.endLocked(t.open, err)
	}
	t.trace.Duration = t.clock().Sub(t.trace.Start)
	t.trace.Result = result
	if err != nil {
		t.trace.Err = err.Error()
	}
}

// Trace returns a deep copy of the trace recorded so far.
func (t *Tracer) Trace() *QueryTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.trace
	out.Spans = make([]Span, len(t.trace.Spans))
	for i, s := range t.trace.Spans {
		out.Spans[i] = s
		if s.Ops != nil {
			ops := make(map[string]int64, len(s.Ops))
			for k, v := range s.Ops {
				ops[k] = v
			}
			out.Spans[i].Ops = ops
		}
	}
	out.Events = append([]TraceEvent(nil), t.trace.Events...)
	return &out
}

// OpNames returns the sorted short names of watched counters, for stable
// rendering.
func (t *Tracer) OpNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.watched))
	for n := range t.watched {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// tracerKey is the context key for the ambient tracer.
type tracerKey struct{}

// WithTracer attaches a tracer to a context; the protocol engine records
// phase spans into it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the ambient tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
