package obs

// Continuous-operation (serve mode) metric families, published by the
// admission controller and the epoch state machine. See
// docs/OBSERVABILITY.md § Metrics reference.

// Admissions counts serve-mode admission decisions by outcome: "admitted"
// or a typed refusal ("budget-exhausted", "draining", "overloaded",
// "unavailable").
func Admissions(role, decision string) *Counter {
	return Default.Counter("privconsensus_admissions_total",
		"Serve-mode admission decisions by outcome.",
		L("role", role), L("decision", decision))
}

// AdmissionWaitSeconds observes how long one admission decision took,
// including the serve-control round trip that registers the query on the
// peer server.
func AdmissionWaitSeconds(role string) *Histogram {
	return Default.Histogram("privconsensus_admission_wait_seconds",
		"Seconds spent deciding one serve-mode admission.",
		DurationBuckets(), L("role", role))
}

// ServeEpoch is the per-role current key epoch; it only ever steps
// forward, once per committed rotation.
func ServeEpoch(role string) *Gauge {
	return Default.Gauge("privconsensus_serve_epoch",
		"Current serve-mode key epoch.", L("role", role))
}

// ServeInflight is the number of admitted queries that have not yet
// reached a terminal result.
func ServeInflight(role string) *Gauge {
	return Default.Gauge("privconsensus_serve_inflight",
		"Admitted serve-mode queries not yet resolved.", L("role", role))
}

// TenantEpsilon is the cumulative committed ε of one tenant at the
// ledger's configured δ (reservations for in-flight queries excluded).
func TenantEpsilon(tenant string) *Gauge {
	return Default.Gauge("privconsensus_tenant_epsilon",
		"Cumulative committed (eps, delta)-DP spend per tenant.",
		L("tenant", tenant))
}
