package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewAdminMux builds the admin HTTP mux for a registry:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 "ok" liveness probe
//	/debug/traces  JSON ring buffer of the last completed QueryTraces
//	/debug/pprof/  stdlib profiling handlers
//	/debug/vars    expvar JSON
//
// The handlers expose only aggregate quantities and runtime profiles —
// never plaintext votes, shares or key material.
func NewAdminMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = Default
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct { //nolint:errcheck // best-effort debug endpoint
			Total  uint64        `json:"total"`
			Traces []*QueryTrace `json:"traces"`
		}{DefaultTraces.Total(), DefaultTraces.Traces()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// AdminServer is a running admin endpoint.
type AdminServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartAdmin binds addr and serves the admin mux for reg in a background
// goroutine. Pass reg == nil for the Default registry.
func StartAdmin(addr string, reg *Registry) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewAdminMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	a := &AdminServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return a, nil
}

// Close shuts the admin endpoint down immediately.
func (a *AdminServer) Close() error {
	if a == nil || a.srv == nil {
		return nil
	}
	return a.srv.Close()
}
