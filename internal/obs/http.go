package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// readiness is the process-wide serve-mode readiness state reported by
// /healthz. Batch deployments never set it, so they keep the historic
// static 200 "ok"; a serve-mode admission controller publishes
// "admitting" / "draining" / "budget-exhausted" through SetReadiness.
var readiness atomic.Pointer[readinessState]

type readinessState struct {
	state string
	ready bool
}

// SetReadiness publishes the serve-mode readiness state: /healthz answers
// 200 with the state text when ready, 503 otherwise. Passing state == ""
// restores the default static 200 "ok" probe.
func SetReadiness(state string, ready bool) {
	if state == "" {
		readiness.Store(nil)
		return
	}
	readiness.Store(&readinessState{state: state, ready: ready})
}

// Readiness reports the currently published serve-mode state ("" and true
// when no serve mode is active and the probe is the static "ok").
func Readiness() (state string, ready bool) {
	if r := readiness.Load(); r != nil {
		return r.state, r.ready
	}
	return "", true
}

// NewAdminMux builds the admin HTTP mux for a registry:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       readiness probe: 200 "ok" in batch mode; in serve mode
//	               the admission state ("admitting" 200, "draining" /
//	               "budget-exhausted" 503) published via SetReadiness
//	/debug/traces  JSON ring buffer of the last completed QueryTraces
//	/debug/pprof/  stdlib profiling handlers
//	/debug/vars    expvar JSON
//
// The handlers expose only aggregate quantities and runtime profiles —
// never plaintext votes, shares or key material.
func NewAdminMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = Default
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		state, ready := Readiness()
		if state == "" {
			state = "ok"
		}
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		} else {
			w.WriteHeader(http.StatusOK)
		}
		fmt.Fprintln(w, state)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct { //nolint:errcheck // best-effort debug endpoint
			Total  uint64        `json:"total"`
			Traces []*QueryTrace `json:"traces"`
		}{DefaultTraces.Total(), DefaultTraces.Traces()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// AdminServer is a running admin endpoint.
type AdminServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartAdmin binds addr and serves the admin mux for reg in a background
// goroutine. Pass reg == nil for the Default registry.
func StartAdmin(addr string, reg *Registry) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewAdminMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	a := &AdminServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return a, nil
}

// Close shuts the admin endpoint down immediately.
func (a *AdminServer) Close() error {
	if a == nil || a.srv == nil {
		return nil
	}
	return a.srv.Close()
}
