package obs

import "sync"

// TraceRing keeps the last N completed QueryTraces for the /debug/traces
// admin endpoint. Safe for concurrent use; a nil ring drops adds.
type TraceRing struct {
	mu    sync.Mutex
	buf   []*QueryTrace
	next  int
	full  bool
	total uint64
}

// NewTraceRing builds a ring holding the last n traces (n < 1 selects 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*QueryTrace, n)}
}

// Add records a completed trace (a caller-owned copy; the ring never
// mutates it).
func (r *TraceRing) Add(qt *QueryTrace) {
	if r == nil || qt == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = qt
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Total reports how many traces were ever added.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Traces returns the retained traces, oldest first.
func (r *TraceRing) Traces() []*QueryTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*QueryTrace, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	// Drop nil slots (ring not yet full).
	n := 0
	for _, qt := range out {
		if qt != nil {
			out[n] = qt
			n++
		}
	}
	return out[:n]
}

// DefaultTraces is the process-wide ring served on /debug/traces. The
// deploy servers and the in-process engine add every completed query.
var DefaultTraces = NewTraceRing(64)
