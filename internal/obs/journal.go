package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Durable structured event journal.
//
// A Journal is an append-only JSONL file: one Event per line, every record
// SHA-256 hash-chained to its predecessor, so any in-place edit, deletion
// or reordering of committed records is detectable by VerifyJournal. The
// chain anchors at whatever the first record of a file carries in Prev —
// "" for a fresh journal, the last hash of the previous segment after a
// size rotation — so a rotated pair of files verifies as one chain.
//
// Crash tolerance: a record is one write(2) of one line, so a crash can at
// worst leave a torn final line (no trailing newline, or undecodable
// bytes). OpenJournal drops such a tail and re-anchors the chain on the
// last intact record; VerifyJournal tolerates the same torn tail and
// nothing else.
//
// Events record quantities and identities only — trace IDs, phase names,
// byte counts, durations, rejection reasons. Never plaintext votes, shares
// or key material (see the package privacy rule in doc.go/OBSERVABILITY).

// Journal event types.
const (
	// EventTraceBegin is the per-process anchor: appended once when the
	// process learns its trace ID. cmd/trace aligns per-role clocks on it.
	EventTraceBegin = "trace-begin"
	// EventSpan is one closed protocol phase of a query.
	EventSpan = "span"
	// EventQuery closes a query: outcome, total duration and traffic.
	EventQuery = "query"
	// EventRejection is a submission refused by server-side validation.
	EventRejection = "rejection"
	// EventRetry is a retried attempt (instance, reconnect or upload).
	EventRetry = "retry"
	// EventFault is an injected transport fault (chaos runs only).
	EventFault = "fault"
	// EventQuorum is a per-instance participation decision.
	EventQuorum = "quorum"
	// EventDelta is a public threshold correction δ applied under partial
	// participation.
	EventDelta = "delta-correction"
	// EventSpend is a privacy-accountant spend.
	EventSpend = "spend"
	// EventRelayBatch is one combined (pre-summed) batch crossing an
	// ingestion-tier hop: forwarded upstream by a relay, or accepted by a
	// server from a relay. The note carries side, sequence and member count.
	EventRelayBatch = "relay-batch"
	// EventAdmission is a serve-mode admission decision: the note carries
	// the decision (admitted, or the typed refusal reason) and the tenant;
	// Instance is the query ID on grants, -1 on refusals.
	EventAdmission = "admission"
	// EventEpoch is a serve-mode epoch state transition (prepared,
	// committed, retired); the note carries the transition and the epoch.
	EventEpoch = "epoch"
)

// Event is one journal record. Instance is -1 for session-scoped events
// (trace anchors, faults, reconnects) that belong to no single query
// instance.
type Event struct {
	// Seq numbers records consecutively within a chain (monotone across
	// rotation).
	Seq uint64 `json:"seq"`
	// TimeNs is the append wall time in Unix nanoseconds.
	TimeNs int64 `json:"t"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Trace is the cross-process trace ID ("t-%016x"), empty when the
	// process ran untraced.
	Trace string `json:"trace,omitempty"`
	// Role is the emitting process ("s1", "s2", "user3", "engine").
	Role string `json:"role,omitempty"`
	// Query is the query identity the event belongs to, e.g. "s1-q3".
	Query string `json:"query,omitempty"`
	// Instance is the query instance index, or -1 for session scope.
	Instance int `json:"inst"`
	// Attempt is the 1-based delivery attempt, 0 when not applicable.
	Attempt int `json:"attempt,omitempty"`
	// Phase is the protocol step label on span events.
	Phase string `json:"phase,omitempty"`
	// StartNs/DurNs position the event on the timeline: for spans the
	// phase open time and duration, for point events the moment they
	// happened (TimeNs is when they were journaled, which for spans is
	// batched at query end).
	StartNs int64 `json:"start,omitempty"`
	DurNs   int64 `json:"dur,omitempty"`
	// Traffic attributed to the event (span and query events).
	BytesSent     int64 `json:"tx,omitempty"`
	BytesReceived int64 `json:"rx,omitempty"`
	MsgsSent      int64 `json:"mtx,omitempty"`
	MsgsReceived  int64 `json:"mrx,omitempty"`
	Rounds        int64 `json:"rounds,omitempty"`
	// Note carries the type-specific detail: rejection reason, quorum
	// verdict, δ value, spend kind, query result.
	Note string `json:"note,omitempty"`
	// Err records a failure attached to the event.
	Err string `json:"err,omitempty"`
	// Prev is the hex hash of the previous record ("" only on a fresh
	// chain); Hash is SHA-256 over this record serialized with Hash empty.
	Prev string `json:"prev"`
	Hash string `json:"hash"`
}

// eventHash computes the record hash: SHA-256 of the JSON serialization
// with the Hash field empty (Prev already filled, so each record commits
// to the whole chain before it).
func eventHash(ev Event) (string, error) {
	ev.Hash = ""
	body, err := json.Marshal(ev)
	if err != nil {
		return "", fmt.Errorf("obs: marshal journal event: %w", err)
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), nil
}

// JournalOptions configures OpenJournal.
type JournalOptions struct {
	// Role stamps every appended event that carries none of its own.
	Role string
	// MaxBytes rotates the file to <path>.1 when an append would push it
	// past this size (0 selects the 8 MiB default; < 0 disables rotation).
	// The hash chain and sequence numbers continue across the rotation.
	MaxBytes int64
}

// defaultJournalMaxBytes is the rotation threshold when unconfigured.
const defaultJournalMaxBytes = 8 << 20

// Journal is an append-only, hash-chained JSONL event log. Safe for
// concurrent use. A nil *Journal is a valid no-op sink.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	maxBytes int64
	size     int64
	seq      uint64
	last     string // hash of the most recent record
	role     string
	trace    string
	begun    bool // trace-begin anchor already written
	clock    func() time.Time
}

// OpenJournal opens (or creates) the journal at path for appending. An
// existing file is scanned for structural integrity: a torn final line —
// the only damage a crashed writer can leave — is truncated away and the
// chain re-anchors on the last intact record.
func OpenJournal(path string, o JournalOptions) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	j := &Journal{
		f:        f,
		path:     path,
		maxBytes: o.MaxBytes,
		role:     o.Role,
		clock:    time.Now,
	}
	if j.maxBytes == 0 {
		j.maxBytes = defaultJournalMaxBytes
	}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans the existing file, keeps the longest decodable prefix of
// complete lines, truncates anything after it, and restores seq/last so
// appends continue the chain.
func (j *Journal) recover() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("obs: scan journal: %w", err)
	}
	good := int64(0) // byte offset past the last intact record
	rest := data
	for {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail (or empty remainder): drop
		}
		var ev Event
		if err := json.Unmarshal(rest[:nl], &ev); err != nil || ev.Hash == "" {
			break // undecodable line: treat it and everything after as torn
		}
		j.seq = ev.Seq
		j.last = ev.Hash
		good += int64(nl) + 1
		rest = rest[nl+1:]
	}
	if good < int64(len(data)) {
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("obs: truncate torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("obs: seek journal: %w", err)
	}
	j.size = good
	return nil
}

// errJournalClosed reports an append on a closed journal.
var errJournalClosed = errors.New("obs: journal closed")

// SetTrace sets the default trace ID stamped on events that carry none.
func (j *Journal) SetTrace(id string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.trace = id
	j.mu.Unlock()
}

// BeginTrace records the trace identity for this process: it becomes the
// default stamp for later events and a trace-begin anchor event is
// appended (once — later calls with the same or another ID only restamp).
// cmd/trace aligns the per-process timelines on these anchors.
func (j *Journal) BeginTrace(id string) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	j.trace = id
	first := !j.begun
	j.begun = true
	j.mu.Unlock()
	if !first {
		return nil
	}
	return j.Append(Event{Type: EventTraceBegin, Instance: -1})
}

// Append fills the record's bookkeeping fields (Seq, TimeNs, Role, Trace,
// Prev, Hash), writes it as one line, and rotates first if the file would
// outgrow MaxBytes. Nil-safe: a nil journal drops the event.
func (j *Journal) Append(ev Event) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errJournalClosed
	}
	ev.Seq = j.seq + 1
	if ev.TimeNs == 0 {
		ev.TimeNs = j.clock().UnixNano()
	}
	if ev.Role == "" {
		ev.Role = j.role
	}
	if ev.Trace == "" {
		ev.Trace = j.trace
	}
	ev.Prev = j.last
	hash, err := eventHash(ev)
	if err != nil {
		return err
	}
	ev.Hash = hash
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("obs: marshal journal event: %w", err)
	}
	line = append(line, '\n')
	if j.maxBytes > 0 && j.size > 0 && j.size+int64(len(line)) > j.maxBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("obs: append journal event: %w", err)
	}
	j.size += int64(len(line))
	j.seq = ev.Seq
	j.last = ev.Hash
	return nil
}

// rotateLocked moves the current file to <path>.1 (replacing any previous
// rotation) and starts a fresh file. The chain continues: the new file's
// first record carries the rotated file's last hash in Prev.
func (j *Journal) rotateLocked() error {
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("obs: rotate journal: %w", err)
	}
	if err := os.Rename(j.path, j.path+".1"); err != nil {
		return fmt.Errorf("obs: rotate journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: rotate journal: %w", err)
	}
	j.f = f
	j.size = 0
	return nil
}

// AppendTrace journals one completed query: one span event per phase, one
// event per recorded point annotation (δ corrections etc.), and a closing
// query event carrying the outcome and totals. Span traffic is copied from
// the trace verbatim, so journaled bytes equal the transport meter exactly
// (the PR-2 invariant extends to disk).
func (j *Journal) AppendTrace(instance, attempt int, qt *QueryTrace) error {
	if j == nil || qt == nil {
		return nil
	}
	for _, s := range qt.Spans {
		ev := Event{
			Type: EventSpan, Query: qt.ID, Instance: instance, Attempt: attempt,
			Phase: s.Phase, DurNs: int64(s.Duration),
			BytesSent: s.BytesSent, BytesReceived: s.BytesReceived,
			MsgsSent: s.MsgsSent, MsgsReceived: s.MsgsReceived,
			Rounds: s.Rounds, Err: s.Err,
		}
		if !s.Start.IsZero() {
			ev.StartNs = s.Start.UnixNano()
		}
		if err := j.Append(ev); err != nil {
			return err
		}
	}
	for _, te := range qt.Events {
		ev := Event{
			Type: te.Type, Query: qt.ID, Instance: instance, Attempt: attempt,
			StartNs: te.Time.UnixNano(), Note: te.Detail,
		}
		if err := j.Append(ev); err != nil {
			return err
		}
	}
	sent, recvd := qt.TotalBytes()
	return j.Append(Event{
		Type: EventQuery, Query: qt.ID, Instance: instance, Attempt: attempt,
		StartNs: qt.Start.UnixNano(), DurNs: int64(qt.Duration),
		BytesSent: sent, BytesReceived: recvd,
		Note: qt.Result, Err: qt.Err,
	})
}

// Path returns the journal file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close flushes and closes the journal file. Nil-safe and idempotent.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// VerifyJournal checks a journal stream's hash chain: every complete line
// must decode, recompute to its own hash, link to its predecessor, and
// carry the successor sequence number. A torn final line (no trailing
// newline — the one artifact a crashed writer can leave) is tolerated and
// excluded from the count; any other damage is an error naming the record.
// It returns the number of verified records.
func VerifyJournal(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("obs: read journal: %w", err)
	}
	n := 0
	prevHash := ""
	var prevSeq uint64
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: tolerated
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return n, fmt.Errorf("obs: journal record %d does not decode: %w", n+1, err)
		}
		want, err := eventHash(ev)
		if err != nil {
			return n, err
		}
		if ev.Hash != want {
			return n, fmt.Errorf("obs: journal record %d (seq %d) hash mismatch: content was altered", n+1, ev.Seq)
		}
		if n > 0 {
			if ev.Prev != prevHash {
				return n, fmt.Errorf("obs: journal record %d (seq %d) does not chain to its predecessor", n+1, ev.Seq)
			}
			if ev.Seq != prevSeq+1 {
				return n, fmt.Errorf("obs: journal record %d has seq %d after %d: records removed or reordered", n+1, ev.Seq, prevSeq)
			}
		}
		prevHash = ev.Hash
		prevSeq = ev.Seq
		n++
	}
	return n, nil
}

// VerifyJournalFile verifies the chain of one journal file.
func VerifyJournalFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("obs: open journal: %w", err)
	}
	defer f.Close()
	n, err := VerifyJournal(f)
	if err != nil {
		return n, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}

// ReadJournal decodes a journal stream leniently — no hash checking, torn
// tail skipped — for tooling that merges possibly-live files. Pair with
// VerifyJournal when integrity matters.
func ReadJournal(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("obs: read journal: %w", err)
	}
	var out []Event
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break
		}
		var ev Event
		if err := json.Unmarshal(rest[:nl], &ev); err == nil {
			out = append(out, ev)
		}
		rest = rest[nl+1:]
	}
	return out, nil
}

// ReadJournalFile reads one journal file leniently.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	defer f.Close()
	return ReadJournal(f)
}
