package dgk

import (
	"encoding/json"
	"fmt"
	"math/big"
)

// JSON serialization of DGK key material (decimal-string big integers).
// The private key stores the secret prime p and exponent v_p alongside the
// public elements; the decryption table is rebuilt on load.

// publicKeyJSON is the wire form of a PublicKey.
type publicKeyJSON struct {
	N     string `json:"n"`
	G     string `json:"g"`
	H     string `json:"h"`
	U     uint64 `json:"u"`
	RBits int    `json:"rBits"`
	L     int    `json:"l"`
}

// MarshalJSON implements json.Marshaler.
func (pk *PublicKey) MarshalJSON() ([]byte, error) {
	if pk.N == nil || pk.G == nil || pk.H == nil || pk.U == nil {
		return nil, fmt.Errorf("dgk: cannot marshal zero public key")
	}
	return json.Marshal(publicKeyJSON{
		N: pk.N.String(), G: pk.G.String(), H: pk.H.String(),
		U: pk.U.Uint64(), RBits: pk.RBits, L: pk.L,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (pk *PublicKey) UnmarshalJSON(data []byte) error {
	var raw publicKeyJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("dgk: decode public key: %w", err)
	}
	out, err := raw.toPublic()
	if err != nil {
		return err
	}
	*pk = *out
	return nil
}

// toPublic validates and converts the wire form.
func (raw publicKeyJSON) toPublic() (*PublicKey, error) {
	n, ok := new(big.Int).SetString(raw.N, 10)
	if !ok || n.Sign() <= 0 {
		return nil, fmt.Errorf("dgk: invalid modulus")
	}
	g, ok := new(big.Int).SetString(raw.G, 10)
	if !ok || g.Sign() <= 0 {
		return nil, fmt.Errorf("dgk: invalid generator g")
	}
	h, ok := new(big.Int).SetString(raw.H, 10)
	if !ok || h.Sign() <= 0 {
		return nil, fmt.Errorf("dgk: invalid generator h")
	}
	if raw.U < 3 || raw.RBits < 8 || raw.L < 1 || raw.L > 62 {
		return nil, fmt.Errorf("dgk: invalid parameters u=%d rBits=%d l=%d", raw.U, raw.RBits, raw.L)
	}
	return &PublicKey{
		N: n, G: g, H: h,
		U: new(big.Int).SetUint64(raw.U), RBits: raw.RBits, L: raw.L,
		pre: &precomp{},
	}, nil
}

// privateKeyJSON is the wire form of a PrivateKey.
type privateKeyJSON struct {
	Public publicKeyJSON `json:"public"`
	P      string        `json:"p"`
	Vp     string        `json:"vp"`
}

// MarshalJSON implements json.Marshaler.
func (k *PrivateKey) MarshalJSON() ([]byte, error) {
	if k.p == nil || k.vp == nil {
		return nil, fmt.Errorf("dgk: cannot marshal zero private key")
	}
	pub, err := k.Public().MarshalJSON()
	if err != nil {
		return nil, err
	}
	var rawPub publicKeyJSON
	if err := json.Unmarshal(pub, &rawPub); err != nil {
		return nil, err
	}
	return json.Marshal(privateKeyJSON{
		Public: rawPub, P: k.p.String(), Vp: k.vp.String(),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (k *PrivateKey) UnmarshalJSON(data []byte) error {
	var raw privateKeyJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("dgk: decode private key: %w", err)
	}
	pub, err := raw.Public.toPublic()
	if err != nil {
		return err
	}
	p, ok := new(big.Int).SetString(raw.P, 10)
	if !ok || p.Sign() <= 0 || !p.ProbablyPrime(32) {
		return fmt.Errorf("dgk: invalid secret prime")
	}
	vp, ok := new(big.Int).SetString(raw.Vp, 10)
	if !ok || vp.Sign() <= 0 {
		return fmt.Errorf("dgk: invalid secret exponent")
	}
	if new(big.Int).Mod(pub.N, p).Sign() != 0 {
		return fmt.Errorf("dgk: secret prime does not divide the modulus")
	}
	k.PublicKey = *pub
	k.p = p
	k.vp = vp
	k.buildDecTable(pub.U.Uint64())
	return nil
}
