// Package dgk implements the Damgård–Geisler–Krøigaard (DGK) cryptosystem
// and the interactive DGK secure-comparison protocol (refs. [12], [13] of
// the paper), which the private consensus protocol uses for its Secure
// Comparison and Threshold Checking steps.
//
// DGK ciphertexts live in Z_n^* with E(m) = g^m · h^r mod n. The plaintext
// space Z_u is deliberately tiny (u is a small prime), which makes the
// zero-test decryption used by the comparison protocol a single modular
// exponentiation — the property that makes DGK faster than Paillier for
// bitwise comparison.
package dgk

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"github.com/privconsensus/privconsensus/internal/mathutil"
)

// Errors returned by the package.
var (
	ErrMessageRange  = errors.New("dgk: message outside plaintext space [0, u)")
	ErrCiphertextNil = errors.New("dgk: nil ciphertext")
	ErrNotInTable    = errors.New("dgk: plaintext not in decryption table")
	ErrBadParams     = errors.New("dgk: invalid key parameters")
)

// Params configures DGK key generation.
type Params struct {
	// NBits is the modulus size. The paper's prototype regime is small
	// (64-bit Paillier); production should use >= 1024.
	NBits int
	// TBits is the bit length of the secret primes v_p, v_q (security of
	// the blinding; >= 160 in production).
	TBits int
	// U is the plaintext-space prime. It must exceed 3*L+2 so comparison
	// intermediate values cannot wrap to zero.
	U uint64
	// L is the bit length of the values compared by the comparison
	// protocol.
	L int
}

// DefaultParams returns parameters suitable for the paper's experimental
// regime: 40-bit compared values with a comfortable plaintext space.
func DefaultParams() Params {
	return Params{NBits: 512, TBits: 160, U: 1009, L: 40}
}

// TestParams returns small, fast parameters for tests and simulations.
func TestParams() Params {
	return Params{NBits: 192, TBits: 40, U: 1009, L: 40}
}

// Validate checks internal consistency of the parameters.
func (p Params) Validate() error {
	if p.L <= 0 || p.L > 62 {
		return fmt.Errorf("%w: L=%d must be in [1, 62]", ErrBadParams, p.L)
	}
	if p.U <= uint64(3*p.L+2) {
		return fmt.Errorf("%w: U=%d must exceed 3*L+2=%d", ErrBadParams, p.U, 3*p.L+2)
	}
	if !new(big.Int).SetUint64(p.U).ProbablyPrime(32) {
		return fmt.Errorf("%w: U=%d must be prime", ErrBadParams, p.U)
	}
	uBits := new(big.Int).SetUint64(p.U).BitLen()
	minHalf := uBits + p.TBits + 8
	if p.NBits/2 < minHalf {
		return fmt.Errorf("%w: NBits=%d too small for TBits=%d and U=%d (need >= %d)",
			ErrBadParams, p.NBits, p.TBits, p.U, 2*minHalf)
	}
	return nil
}

// PublicKey is the DGK public key.
type PublicKey struct {
	N *big.Int // modulus
	G *big.Int // order u*v_p*v_q element
	H *big.Int // order v_p*v_q element
	U *big.Int // plaintext-space prime
	// RBits is the bit length of encryption randomness (2.5 * TBits).
	RBits int
	// L is the comparison bit length carried for protocol agreement.
	L int
	// pre holds the lazily-built fixed-base tables for g and h. The holder
	// is attached at key construction/load and shared (by pointer) with
	// every copy of the key, so a table is built once per key and then read
	// lock-free by all nonce-pool workers and comparison goroutines.
	pre *precomp
}

// precomp caches the fixed-base exponentiation tables derived from a key.
// Both generators are fixed for the key's lifetime: g raises only
// plaintexts (< u) and h only RBits-wide blinding exponents, so two small
// window tables replace every square-and-multiply on the encrypt path.
type precomp struct {
	gOnce, hOnce sync.Once
	g, h         *mathutil.FixedBaseExp
}

// gTable returns the fixed-base table for g (exponents < u), building it on
// first use. It is nil for hand-assembled keys without a holder or when the
// modulus is unusable (e.g. even); callers then fall back to big.Int.Exp.
func (pk *PublicKey) gTable() *mathutil.FixedBaseExp {
	if pk.pre == nil {
		return nil
	}
	pk.pre.gOnce.Do(func() {
		if t, err := mathutil.NewFixedBaseExp(pk.G, pk.N, pk.U.BitLen()); err == nil {
			pk.pre.g = t
		}
	})
	return pk.pre.g
}

// hTable returns the fixed-base table for h (RBits-wide exponents).
func (pk *PublicKey) hTable() *mathutil.FixedBaseExp {
	if pk.pre == nil {
		return nil
	}
	pk.pre.hOnce.Do(func() {
		if t, err := mathutil.NewFixedBaseExp(pk.H, pk.N, pk.RBits); err == nil {
			pk.pre.h = t
		}
	})
	return pk.pre.h
}

// Precompute eagerly builds the fixed-base tables so the first encryption
// after key load does not pay the table-construction cost. Safe to call
// concurrently and more than once.
func (pk *PublicKey) Precompute() {
	pk.gTable()
	pk.hTable()
}

// PrivateKey holds the DGK secret key with its zero-test and decryption
// tables.
type PrivateKey struct {
	PublicKey
	p, vp *big.Int
	// decTable maps (g^{v_p})^m mod p -> m for full decryption.
	decTable map[string]uint64
}

// Zeroize destroys the private half of the key in place: the secret
// factor and subgroup order have their limbs overwritten with zeros, and
// the decryption table (whose keys are powers of a secret subgroup
// element) is dropped. The embedded PublicKey holds no secrets and is
// left intact. The key is unusable for decryption afterwards.
func (sk *PrivateKey) Zeroize() {
	if sk == nil {
		return
	}
	for _, v := range []*big.Int{sk.p, sk.vp} {
		if v == nil {
			continue
		}
		bits := v.Bits()
		for i := range bits {
			bits[i] = 0
		}
		v.SetInt64(0)
	}
	sk.p, sk.vp = nil, nil
	// Map keys cannot be scrubbed in place; dropping every entry is the
	// best Go allows, and the table is useless without vp anyway.
	for k := range sk.decTable {
		delete(sk.decTable, k)
	}
	sk.decTable = nil
}

// Ciphertext is a DGK ciphertext in Z_n^*.
type Ciphertext struct {
	C *big.Int
}

// Clone returns an independent copy.
func (c *Ciphertext) Clone() *Ciphertext {
	if c == nil || c.C == nil {
		return nil
	}
	return &Ciphertext{C: new(big.Int).Set(c.C)}
}

// GenerateKey creates a DGK key pair. rng defaults to crypto/rand.Reader.
func GenerateKey(rng io.Reader, params Params) (*PrivateKey, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.Reader
	}
	u := new(big.Int).SetUint64(params.U)
	vp, err := mathutil.RandPrime(rng, params.TBits)
	if err != nil {
		return nil, err
	}
	vq, err := mathutil.RandPrime(rng, params.TBits)
	if err != nil {
		return nil, err
	}
	for vq.Cmp(vp) == 0 {
		if vq, err = mathutil.RandPrime(rng, params.TBits); err != nil {
			return nil, err
		}
	}

	half := params.NBits / 2
	p, err := findDGKPrime(rng, half, u, vp)
	if err != nil {
		return nil, fmt.Errorf("dgk: generate p: %w", err)
	}
	q, err := findDGKPrime(rng, params.NBits-half, u, vq)
	if err != nil {
		return nil, fmt.Errorf("dgk: generate q: %w", err)
	}
	for q.Cmp(p) == 0 {
		if q, err = findDGKPrime(rng, params.NBits-half, u, vq); err != nil {
			return nil, err
		}
	}
	n := new(big.Int).Mul(p, q)

	gp, err := elementOfOrder(rng, p, u, vp) // order u*vp mod p
	if err != nil {
		return nil, fmt.Errorf("dgk: find g mod p: %w", err)
	}
	gq, err := elementOfOrder(rng, q, u, vq)
	if err != nil {
		return nil, fmt.Errorf("dgk: find g mod q: %w", err)
	}
	hp, err := elementOfOrder(rng, p, mathutil.One, vp) // order vp mod p
	if err != nil {
		return nil, fmt.Errorf("dgk: find h mod p: %w", err)
	}
	hq, err := elementOfOrder(rng, q, mathutil.One, vq)
	if err != nil {
		return nil, fmt.Errorf("dgk: find h mod q: %w", err)
	}
	crt, err := mathutil.NewCRTParams(p, q)
	if err != nil {
		return nil, fmt.Errorf("dgk: CRT setup: %w", err)
	}
	g := crt.Combine(gp, gq)
	h := crt.Combine(hp, hq)

	key := &PrivateKey{
		PublicKey: PublicKey{
			N: n, G: g, H: h, U: u,
			RBits: params.TBits * 5 / 2,
			L:     params.L,
			pre:   &precomp{},
		},
		p: p, vp: vp,
	}
	key.buildDecTable(params.U)
	return key, nil
}

// findDGKPrime finds a prime s of the given bit length with u*v | s-1.
func findDGKPrime(rng io.Reader, bits int, u, v *big.Int) (*big.Int, error) {
	uv := new(big.Int).Mul(u, v)
	uv.Mul(uv, mathutil.Two)
	wBits := bits - uv.BitLen()
	if wBits < 2 {
		return nil, fmt.Errorf("dgk: %d-bit prime too small for cofactors", bits)
	}
	s := new(big.Int)
	for i := 0; i < 100000; i++ {
		w, err := mathutil.RandBits(rng, wBits)
		if err != nil {
			return nil, err
		}
		w.SetBit(w, wBits-1, 1) // force size
		s.Mul(uv, w)
		s.Add(s, mathutil.One)
		if s.BitLen() >= bits-1 && s.ProbablyPrime(32) {
			return new(big.Int).Set(s), nil
		}
	}
	return nil, errors.New("dgk: no suitable prime found")
}

// elementOfOrder returns an element of order exactly a*b mod prime s, where
// a and b are distinct primes or a == 1.
func elementOfOrder(rng io.Reader, s, a, b *big.Int) (*big.Int, error) {
	sm1 := new(big.Int).Sub(s, mathutil.One)
	ab := new(big.Int).Mul(a, b)
	exp := new(big.Int).Div(sm1, ab)
	cand := new(big.Int)
	for i := 0; i < 10000; i++ {
		x, err := mathutil.RandInt(rng, s)
		if err != nil {
			return nil, err
		}
		if x.Sign() == 0 {
			continue
		}
		cand.Exp(x, exp, s) // order divides a*b
		if cand.Cmp(mathutil.One) == 0 {
			continue
		}
		// Order is in {a, b, ab} (or {b} when a==1). Require exactly ab.
		if a.Cmp(mathutil.One) != 0 {
			if new(big.Int).Exp(cand, a, s).Cmp(mathutil.One) == 0 {
				continue // order divides a, not ab
			}
			if new(big.Int).Exp(cand, b, s).Cmp(mathutil.One) == 0 {
				continue // order divides b
			}
		}
		return new(big.Int).Set(cand), nil
	}
	return nil, errors.New("dgk: no element of required order found")
}

// buildDecTable precomputes the discrete-log table for full decryption.
func (k *PrivateKey) buildDecTable(u uint64) {
	base := new(big.Int).Exp(k.G, k.vp, k.p) // g^{vp} mod p, order u
	k.decTable = make(map[string]uint64, u)
	acc := big.NewInt(1)
	for m := uint64(0); m < u; m++ {
		k.decTable[string(acc.Bytes())] = m
		acc.Mul(acc, base)
		acc.Mod(acc, k.p)
	}
}

// Public returns the public part of the key.
func (k *PrivateKey) Public() *PublicKey {
	pub := k.PublicKey
	return &pub
}

func (pk *PublicKey) validateMessage(m *big.Int) error {
	if m == nil || m.Sign() < 0 || m.Cmp(pk.U) >= 0 {
		return fmt.Errorf("%w: m=%v u=%v", ErrMessageRange, m, pk.U)
	}
	return nil
}

func (pk *PublicKey) validateCiphertext(c *Ciphertext) error {
	if c == nil || c.C == nil {
		return ErrCiphertextNil
	}
	if c.C.Sign() <= 0 || c.C.Cmp(pk.N) >= 0 {
		return fmt.Errorf("dgk: ciphertext out of range")
	}
	return nil
}

// Encrypt encrypts m in [0, u): E(m) = g^m h^r mod n.
func (pk *PublicKey) Encrypt(rng io.Reader, m *big.Int) (*Ciphertext, error) {
	if err := pk.validateMessage(m); err != nil {
		return nil, err
	}
	r, err := mathutil.RandBits(rng, pk.RBits)
	if err != nil {
		return nil, fmt.Errorf("dgk: sample randomness: %w", err)
	}
	// Both factors have fixed bases, so a warm key answers the whole
	// product from its window tables; without tables, Shamir's trick still
	// shares one squaring chain between the two exponentiations. Either
	// path yields the exact same ciphertext value as g^m · h^r computed
	// with two independent big.Int.Exp calls.
	var c *big.Int
	if gt, ht := pk.gTable(), pk.hTable(); gt != nil && ht != nil {
		c = gt.MulExp(ht, m, r)
	} else {
		c = mathutil.MultiExp(pk.G, m, pk.H, r, pk.N)
	}
	encOps.Inc()
	return &Ciphertext{C: c}, nil
}

// EncryptBit encrypts a single bit.
func (pk *PublicKey) EncryptBit(rng io.Reader, b uint8) (*Ciphertext, error) {
	if b > 1 {
		return nil, fmt.Errorf("dgk: bit must be 0 or 1, got %d", b)
	}
	return pk.Encrypt(rng, big.NewInt(int64(b)))
}

// Add returns the ciphertext of m1 + m2 mod u.
func (pk *PublicKey) Add(c1, c2 *Ciphertext) (*Ciphertext, error) {
	if err := pk.validateCiphertext(c1); err != nil {
		return nil, err
	}
	if err := pk.validateCiphertext(c2); err != nil {
		return nil, err
	}
	out := new(big.Int).Mul(c1.C, c2.C)
	out.Mod(out, pk.N)
	return &Ciphertext{C: out}, nil
}

// ScalarMul returns the ciphertext of a*m mod u. Negative a is reduced
// mod u.
func (pk *PublicKey) ScalarMul(c *Ciphertext, a *big.Int) (*Ciphertext, error) {
	if err := pk.validateCiphertext(c); err != nil {
		return nil, err
	}
	aMod := new(big.Int).Mod(a, pk.U)
	out := new(big.Int).Exp(c.C, aMod, pk.N)
	return &Ciphertext{C: out}, nil
}

// AddPlain returns the ciphertext of m + k mod u for plaintext k.
func (pk *PublicKey) AddPlain(c *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.validateCiphertext(c); err != nil {
		return nil, err
	}
	kMod := new(big.Int).Mod(k, pk.U)
	var gk *big.Int
	if gt := pk.gTable(); gt != nil {
		gk = gt.Exp(kMod)
	} else {
		gk = new(big.Int).Exp(pk.G, kMod, pk.N)
	}
	out := gk.Mul(gk, c.C)
	out.Mod(out, pk.N)
	return &Ciphertext{C: out}, nil
}

// Neg returns the ciphertext of -m mod u.
func (pk *PublicKey) Neg(c *Ciphertext) (*Ciphertext, error) {
	return pk.ScalarMul(c, big.NewInt(-1))
}

// IsZero reports whether c encrypts 0, using the fast zero test
// c^{v_p} mod p == 1.
func (k *PrivateKey) IsZero(c *Ciphertext) (bool, error) {
	if err := k.validateCiphertext(c); err != nil {
		return false, err
	}
	t := new(big.Int).Exp(c.C, k.vp, k.p)
	zeroTests.Inc()
	return t.Cmp(mathutil.One) == 0, nil
}

// Decrypt fully decrypts c via the discrete-log table.
func (k *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if err := k.validateCiphertext(c); err != nil {
		return nil, err
	}
	t := new(big.Int).Exp(c.C, k.vp, k.p)
	m, ok := k.decTable[string(t.Bytes())]
	if !ok {
		return nil, ErrNotInTable
	}
	decOps.Inc()
	return new(big.Int).SetUint64(m), nil
}
