package dgk

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/perm"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// This file implements the interactive DGK comparison protocol between two
// parties over a transport.Conn. Party B owns the DGK private key and a
// private value b; party A holds a private value a. Both values are L-bit
// non-negative integers. At the end, both parties learn the single bit
// (a >= b) and nothing else about the other's value.
//
// Round structure:
//
//  1. B -> A: bitwise encryptions E(b_{L-1}), ..., E(b_0).
//  2. A -> B: blinded, permuted E(r_i * c_i) where
//     c_i = a_i - b_i + 1 + 3 * sum_{j>i} (a_j XOR b_j).
//     There exists i with c_i = 0 iff a < b (DGK '07 with the '09
//     correction applied: the XOR prefix sum is multiplied by 3 so
//     non-first-difference positions cannot cancel to zero).
//  3. B -> A: the bit "a >= b" (true iff no blinded value decrypts to 0).
//
// The blinding factors r_i are uniform in [1, u) so B learns only whether
// some c_i is zero; the permutation hides which position. In the paper's
// semi-honest two-server setting the outcome bit itself is the protocol's
// declared output for both servers, so B forwarding it to A leaks nothing
// extra.

// CompareA runs party A's side: it holds value a and learns (a >= b).
func (pk *PublicKey) CompareA(ctx context.Context, rng io.Reader, conn transport.Conn, a *big.Int) (bool, error) {
	// Fail fast on a bad input before touching the wire: blocking on round
	// 1 with a value that can never be compared would hang the session.
	if err := checkRange(a, pk.L); err != nil {
		return false, fmt.Errorf("dgk: CompareA: %w", err)
	}
	// Round 1: receive B's encrypted bits (little-endian).
	msg, err := transport.ExpectKind(ctx, conn, transport.KindBits)
	if err != nil {
		return false, fmt.Errorf("dgk: receive encrypted bits: %w", err)
	}
	permuted, err := pk.blindCompareValues(rng, a, msg.Values)
	if err != nil {
		return false, err
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: permuted}); err != nil {
		return false, fmt.Errorf("dgk: send blinded values: %w", err)
	}

	// Round 3: receive the outcome bit.
	res, err := transport.ExpectKind(ctx, conn, transport.KindResult)
	if err != nil {
		return false, fmt.Errorf("dgk: receive result: %w", err)
	}
	if len(res.Flags) != 1 {
		return false, fmt.Errorf("dgk: malformed result message")
	}
	comparisons.Inc()
	return res.Flags[0] == 1, nil
}

// blindCompareValues computes party A's round-2 payload for one comparison:
// the blinded, permuted E(r_i * c_i) sequence derived from A's value a and
// B's encrypted bit vector (raw ciphertext values, little-endian). It is the
// pure per-comparison compute kernel shared by the single and batched
// protocol variants.
func (pk *PublicKey) blindCompareValues(rng io.Reader, a *big.Int, encBits []*big.Int) ([]*big.Int, error) {
	if err := checkRange(a, pk.L); err != nil {
		return nil, fmt.Errorf("dgk: CompareA: %w", err)
	}
	aBits, err := mathutil.Bits(a, pk.L)
	if err != nil {
		return nil, err
	}
	if len(encBits) != pk.L {
		return nil, fmt.Errorf("dgk: expected %d encrypted bits, got %d", pk.L, len(encBits))
	}
	encB := make([]*Ciphertext, pk.L)
	for i, v := range encBits {
		encB[i] = &Ciphertext{C: v}
		if err := pk.validateCiphertext(encB[i]); err != nil {
			return nil, fmt.Errorf("dgk: bit %d: %w", i, err)
		}
	}

	// Compute E(c_i) for each i, scanning from MSB so the XOR prefix sum
	// over j > i accumulates incrementally.
	//
	// E(a_j XOR b_j) = E(b_j) when a_j = 0, and E(1 - b_j) otherwise.
	encXorSum, err := pk.Encrypt(rng, mathutil.Zero) // sum over processed (higher) positions
	if err != nil {
		return nil, err
	}
	blinded := make([]*Ciphertext, pk.L)
	for i := pk.L - 1; i >= 0; i-- {
		// c_i = a_i - b_i + 1 + 3 * xorSum
		ci, err := pk.ScalarMul(encB[i], big.NewInt(-1)) // -b_i
		if err != nil {
			return nil, err
		}
		ci, err = pk.AddPlain(ci, big.NewInt(int64(aBits[i])+1)) // + a_i + 1
		if err != nil {
			return nil, err
		}
		tripleSum, err := pk.ScalarMul(encXorSum, big.NewInt(3))
		if err != nil {
			return nil, err
		}
		ci, err = pk.Add(ci, tripleSum)
		if err != nil {
			return nil, err
		}
		// Blind with a random nonzero exponent: zero stays zero, nonzero
		// becomes uniform nonzero.
		r, err := randNonzero(rng, pk.U)
		if err != nil {
			return nil, err
		}
		blinded[i], err = pk.ScalarMul(ci, r)
		if err != nil {
			return nil, err
		}

		// Fold position i into the XOR prefix sum for lower positions.
		var xi *Ciphertext
		if aBits[i] == 0 {
			xi = encB[i]
		} else {
			neg, err := pk.ScalarMul(encB[i], big.NewInt(-1))
			if err != nil {
				return nil, err
			}
			xi, err = pk.AddPlain(neg, mathutil.One) // 1 - b_i
			if err != nil {
				return nil, err
			}
		}
		encXorSum, err = pk.Add(encXorSum, xi)
		if err != nil {
			return nil, err
		}
	}

	// Permute so B cannot tell which bit position (if any) was zero.
	pi, err := perm.New(rng, pk.L)
	if err != nil {
		return nil, err
	}
	vals := make([]*big.Int, pk.L)
	for i, c := range blinded {
		vals[i] = c.C
	}
	return pi.Apply(vals)
}

// CompareB runs party B's side (the key owner): it holds value b and learns
// (a >= b).
func (k *PrivateKey) CompareB(ctx context.Context, rng io.Reader, conn transport.Conn, b *big.Int) (bool, error) {
	if err := checkRange(b, k.L); err != nil {
		return false, fmt.Errorf("dgk: CompareB: %w", err)
	}
	bBits, err := mathutil.Bits(b, k.L)
	if err != nil {
		return false, err
	}

	// Round 1: send bitwise encryptions.
	vals := make([]*big.Int, k.L)
	for i, bit := range bBits {
		c, err := k.EncryptBit(rng, bit)
		if err != nil {
			return false, err
		}
		vals[i] = c.C
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindBits, Values: vals}); err != nil {
		return false, fmt.Errorf("dgk: send encrypted bits: %w", err)
	}
	return k.finishCompareB(ctx, conn)
}

// finishCompareB runs rounds 2-3 of party B's side: zero-test the blinded
// values and share the outcome bit.
func (k *PrivateKey) finishCompareB(ctx context.Context, conn transport.Conn) (bool, error) {
	// Round 2: receive blinded values and zero-test each.
	msg, err := transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return false, fmt.Errorf("dgk: receive blinded values: %w", err)
	}
	aGEb, err := k.zeroTestValues(msg.Values)
	if err != nil {
		return false, err
	}

	// Round 3: share the outcome.
	flag := int64(0)
	if aGEb {
		flag = 1
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindResult, Flags: []int64{flag}}); err != nil {
		return false, fmt.Errorf("dgk: send result: %w", err)
	}
	comparisonsB.Inc()
	return aGEb, nil
}

// zeroTestValues decides one comparison from its blinded round-2 sequence:
// a >= b iff no value decrypts to zero. Every position is tested so the work
// is constant regardless of outcome.
func (k *PrivateKey) zeroTestValues(vals []*big.Int) (bool, error) {
	if len(vals) != k.L {
		return false, fmt.Errorf("dgk: expected %d blinded values, got %d", k.L, len(vals))
	}
	foundZero := false
	for i, v := range vals {
		z, err := k.IsZero(&Ciphertext{C: v})
		if err != nil {
			return false, fmt.Errorf("dgk: zero-test %d: %w", i, err)
		}
		if z {
			foundZero = true
		}
	}
	return !foundZero, nil // a zero exists iff a < b
}

// CompareSignedA is CompareA for signed values in (-2^(L-1), 2^(L-1)): both
// parties shift their inputs by +2^(L-1) before the bitwise protocol.
func (pk *PublicKey) CompareSignedA(ctx context.Context, rng io.Reader, conn transport.Conn, a *big.Int) (bool, error) {
	shifted, err := shiftSigned(a, pk.L)
	if err != nil {
		return false, err
	}
	return pk.CompareA(ctx, rng, conn, shifted)
}

// CompareSignedB is CompareB for signed values in (-2^(L-1), 2^(L-1)).
func (k *PrivateKey) CompareSignedB(ctx context.Context, rng io.Reader, conn transport.Conn, b *big.Int) (bool, error) {
	shifted, err := shiftSigned(b, k.L)
	if err != nil {
		return false, err
	}
	return k.CompareB(ctx, rng, conn, shifted)
}

// shiftSigned maps v in (-2^(L-1), 2^(L-1)) to v + 2^(L-1) in (0, 2^L).
func shiftSigned(v *big.Int, l int) (*big.Int, error) {
	half := new(big.Int).Lsh(mathutil.One, uint(l-1))
	out := new(big.Int).Add(v, half)
	if out.Sign() < 0 || out.BitLen() > l {
		return nil, fmt.Errorf("dgk: signed value %v outside (-2^%d, 2^%d)", v, l-1, l-1)
	}
	return out, nil
}

// checkRange verifies v is a non-negative L-bit value.
func checkRange(v *big.Int, l int) error {
	if v == nil || v.Sign() < 0 || v.BitLen() > l {
		return fmt.Errorf("value %v is not a non-negative %d-bit integer", v, l)
	}
	return nil
}

// randNonzero samples uniformly from [1, u).
func randNonzero(rng io.Reader, u *big.Int) (*big.Int, error) {
	bound := new(big.Int).Sub(u, mathutil.One)
	r, err := mathutil.RandInt(rng, bound)
	if err != nil {
		return nil, err
	}
	return r.Add(r, mathutil.One), nil
}
