package dgk

import (
	"context"
	"io"
	"math/big"
	"sync"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/transport"
)

// lockedRNG serializes reads so a deterministic test rng can feed the
// concurrent per-item workers of the batch protocol (the protocol layer
// performs the same wrapping when multiplexing).
type lockedRNG struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedRNG) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

func lockRNG(seed int64) io.Reader { return &lockedRNG{r: testRNG(seed)} }

// runBatch drives both sides of a batched signed comparison over an
// in-process pair and returns both parties' outcome vectors.
func runBatch(t *testing.T, key *PrivateKey, aVals, bVals []int64, par int,
	runB func(ctx context.Context, connB transport.Conn, shifted []*big.Int) ([]bool, error)) ([]bool, []bool) {
	t.Helper()
	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	av := bigs(aVals)
	bv := bigs(bVals)
	type res struct {
		geq []bool
		err error
	}
	ch := make(chan res, 1)
	go func() {
		geq, err := key.Public().CompareSignedBatchA(ctx, lockRNG(201), connA, av, par)
		ch <- res{geq, err}
	}()
	geqB, err := runB(ctx, connB, bv)
	if err != nil {
		t.Fatalf("batch B side: %v", err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatalf("batch A side: %v", ra.err)
	}
	return ra.geq, geqB
}

func bigs(vs []int64) []*big.Int {
	out := make([]*big.Int, len(vs))
	for i, v := range vs {
		out[i] = big.NewInt(v)
	}
	return out
}

func TestCompareSignedBatchMatchesPlain(t *testing.T) {
	key := sharedTestKey(t)
	aVals := []int64{5, 3, -7, -10, 1 << 30, 0, 42}
	bVals := []int64{3, 5, -7, 4, -(1 << 30), 0, 42}
	want := []bool{true, false, true, false, true, true, true}

	for _, par := range []int{1, 4} {
		geqA, geqB := runBatch(t, key, aVals, bVals, par,
			func(ctx context.Context, connB transport.Conn, shifted []*big.Int) ([]bool, error) {
				return key.CompareSignedBatchB(ctx, lockRNG(202), connB, shifted, par)
			})
		for i := range want {
			if geqA[i] != want[i] || geqB[i] != want[i] {
				t.Errorf("par %d item %d: compare(%d, %d) = A:%v B:%v, want %v",
					par, i, aVals[i], bVals[i], geqA[i], geqB[i], want[i])
			}
		}
	}
}

func TestCompareBatchRejects(t *testing.T) {
	key := sharedTestKey(t)
	ctx := context.Background()
	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()

	if _, err := key.Public().CompareBatchA(ctx, testRNG(203), connA, nil, 1); err == nil {
		t.Error("expected empty-batch error on A side")
	}
	if _, err := key.CompareBatchB(ctx, testRNG(203), connB, nil, 1); err == nil {
		t.Error("expected empty-batch error on B side")
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 60)
	if _, err := key.Public().CompareBatchA(ctx, testRNG(203), connA, []*big.Int{huge}, 1); err == nil {
		t.Error("expected range error on A side")
	}
	if _, err := key.CompareBatchB(ctx, testRNG(203), connB, []*big.Int{huge}, 1); err == nil {
		t.Error("expected range error on B side")
	}
}
