package dgk

import (
	"math/big"
	"testing"
)

// TestEncryptTablePathByteIdentical proves the fixed-base tables change
// nothing on the wire: the same key and the same seeded rng produce
// byte-for-byte identical ciphertexts with tables warmed and with tables
// absent (the MultiExp fallback a key without precomp state uses).
func TestEncryptTablePathByteIdentical(t *testing.T) {
	key, err := GenerateKey(testRNG(11), TestParams())
	if err != nil {
		t.Fatal(err)
	}
	withTables := key.Public()
	withTables.Precompute()
	// Same public material, but no precomp holder: Encrypt takes the
	// MultiExp fallback path.
	bare := &PublicKey{
		N: withTables.N, G: withTables.G, H: withTables.H,
		U: withTables.U, RBits: withTables.RBits, L: withTables.L,
	}
	for m := int64(0); m < 16; m++ {
		a, err := withTables.Encrypt(testRNG(m), big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		b, err := bare.Encrypt(testRNG(m), big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		if a.C.Cmp(b.C) != 0 {
			t.Fatalf("m=%d: table path %v != direct path %v", m, a.C, b.C)
		}
	}
}

// TestPoolDrawsMatchDirectEncryption proves the pooled path (nonces drawn
// through the h table) yields ciphertexts identical to direct encryption
// with the same rng seed.
func TestPoolDrawsMatchDirectEncryption(t *testing.T) {
	key, err := GenerateKey(testRNG(12), TestParams())
	if err != nil {
		t.Fatal(err)
	}
	pk := key.Public()
	pk.Precompute()
	pool, err := NewNoncePool(testRNG(99), pk, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	direct, err := pk.Encrypt(testRNG(99), big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := pool.Encrypt(t.Context(), big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if direct.C.Cmp(pooled.C) != 0 {
		t.Fatalf("pooled ciphertext %v != direct %v", pooled.C, direct.C)
	}
	got, err := key.Decrypt(pooled)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 5 {
		t.Fatalf("pooled decrypt: got %v, want 5", got)
	}
}
