package dgk

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Batched DGK comparisons: n independent comparisons share the three-round
// structure of compare.go, but each round crosses the wire as ONE
// transport.KindBatch frame instead of n separate messages. The per-item
// cryptography — bit encryptions, blinding, permutation, zero tests — is
// identical to the single-comparison protocol; only the framing changes, so
// a batch of size 1 releases the exact same information as CompareA/B.
//
//	1. B -> A: batch of n KindBits items (L encrypted bits each).
//	2. A -> B: batch of n KindCipherSeq items (L blinded permuted values).
//	3. B -> A: batch of n KindResult items (one ">= " flag each).
//
// par bounds the CPU workers used for the per-item compute between the wire
// exchanges. The frame layout never depends on par, so servers with
// different core counts stay in lock step; with par > 1 the rng must be
// safe for concurrent draws (the protocol layer wraps it when multiplexing).

// forEachItem runs fn(0)..fn(n-1), inline and in order when par <= 1, else
// on up to par workers, returning the first error.
func forEachItem(par, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() {
						firstErr = err
						stop.Store(true)
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// CompareBatchA runs party A's side of a batch of comparisons: it holds
// vals[i] for each and learns the per-item bit (vals[i] >= b_i). Results are
// returned in input order.
func (pk *PublicKey) CompareBatchA(ctx context.Context, rng io.Reader, conn transport.Conn, vals []*big.Int, par int) ([]bool, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("dgk: empty comparison batch")
	}
	for i, v := range vals {
		if err := checkRange(v, pk.L); err != nil {
			return nil, fmt.Errorf("dgk: CompareBatchA item %d: %w", i, err)
		}
	}

	// Round 1: one frame with every comparison's encrypted bit vector.
	bitItems, err := transport.ExpectBatch(ctx, conn, transport.KindBits, n)
	if err != nil {
		return nil, fmt.Errorf("dgk: receive encrypted bit batch: %w", err)
	}

	// Per-item blinding is independent; fan it out over par workers.
	blinded := make([]*transport.Message, n)
	err = forEachItem(par, n, func(i int) error {
		permuted, err := pk.blindCompareValues(rng, vals[i], bitItems[i].Values)
		if err != nil {
			return fmt.Errorf("dgk: CompareBatchA item %d: %w", i, err)
		}
		blinded[i] = &transport.Message{Kind: transport.KindCipherSeq, Values: permuted}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Round 2: one frame with every blinded permuted sequence.
	frame, err := transport.WrapBatch(blinded)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ctx, frame); err != nil {
		return nil, fmt.Errorf("dgk: send blinded batch: %w", err)
	}

	// Round 3: one frame with every outcome bit.
	resItems, err := transport.ExpectBatch(ctx, conn, transport.KindResult, n)
	if err != nil {
		return nil, fmt.Errorf("dgk: receive result batch: %w", err)
	}
	out := make([]bool, n)
	for i, it := range resItems {
		if len(it.Flags) != 1 {
			return nil, fmt.Errorf("dgk: malformed result batch item %d", i)
		}
		out[i] = it.Flags[0] == 1
	}
	comparisons.Add(int64(n))
	return out, nil
}

// CompareSignedBatchA is CompareBatchA for signed values in
// (-2^(L-1), 2^(L-1)).
func (pk *PublicKey) CompareSignedBatchA(ctx context.Context, rng io.Reader, conn transport.Conn, vals []*big.Int, par int) ([]bool, error) {
	shifted, err := shiftSignedAll(vals, pk.L)
	if err != nil {
		return nil, err
	}
	return pk.CompareBatchA(ctx, rng, conn, shifted, par)
}

// batchBitSource supplies B's round-1 bit encryptions: item is the
// comparison index, pos the bit position, bit the plaintext bit. The three
// implementations (fresh rng, nonce pool, material pool) differ only in
// where the encryption randomness comes from.
type batchBitSource func(ctx context.Context, item, pos int, bit uint8) (*Ciphertext, error)

// CompareBatchB runs party B's side (the key owner) with fresh bit
// encryptions drawn from rng.
func (k *PrivateKey) CompareBatchB(ctx context.Context, rng io.Reader, conn transport.Conn, vals []*big.Int, par int) ([]bool, error) {
	return k.compareBatchB(ctx, conn, vals, par,
		func(_ context.Context, _, _ int, bit uint8) (*Ciphertext, error) {
			return k.EncryptBit(rng, bit)
		})
}

// CompareSignedBatchB is CompareBatchB for signed values.
func (k *PrivateKey) CompareSignedBatchB(ctx context.Context, rng io.Reader, conn transport.Conn, vals []*big.Int, par int) ([]bool, error) {
	shifted, err := shiftSignedAll(vals, k.L)
	if err != nil {
		return nil, err
	}
	return k.CompareBatchB(ctx, rng, conn, shifted, par)
}

// compareBatchB is the shared B-side core: encrypt every comparison's bits
// via src, exchange the three batch frames, zero-test, and share the
// outcome bits.
func (k *PrivateKey) compareBatchB(ctx context.Context, conn transport.Conn, vals []*big.Int, par int, src batchBitSource) ([]bool, error) {
	n := len(vals)
	if n == 0 {
		return nil, fmt.Errorf("dgk: empty comparison batch")
	}
	bits := make([][]uint8, n)
	for i, v := range vals {
		if err := checkRange(v, k.L); err != nil {
			return nil, fmt.Errorf("dgk: CompareBatchB item %d: %w", i, err)
		}
		b, err := mathutil.Bits(v, k.L)
		if err != nil {
			return nil, err
		}
		bits[i] = b
	}

	// Round 1: encrypt all n*L bits (fanned out over par workers) and send
	// them as one frame.
	items := make([]*transport.Message, n)
	err := forEachItem(par, n, func(i int) error {
		enc := make([]*big.Int, k.L)
		for pos, bit := range bits[i] {
			c, err := src(ctx, i, pos, bit)
			if err != nil {
				return fmt.Errorf("dgk: batch bit encryption item %d: %w", i, err)
			}
			enc[pos] = c.C
		}
		items[i] = &transport.Message{Kind: transport.KindBits, Values: enc}
		return nil
	})
	if err != nil {
		return nil, err
	}
	frame, err := transport.WrapBatch(items)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ctx, frame); err != nil {
		return nil, fmt.Errorf("dgk: send encrypted bit batch: %w", err)
	}

	// Round 2: receive every blinded sequence and zero-test each item.
	blinded, err := transport.ExpectBatch(ctx, conn, transport.KindCipherSeq, n)
	if err != nil {
		return nil, fmt.Errorf("dgk: receive blinded batch: %w", err)
	}
	out := make([]bool, n)
	err = forEachItem(par, n, func(i int) error {
		geq, err := k.zeroTestValues(blinded[i].Values)
		if err != nil {
			return fmt.Errorf("dgk: batch item %d: %w", i, err)
		}
		out[i] = geq
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Round 3: share all outcome bits in one frame.
	results := make([]*transport.Message, n)
	for i, geq := range out {
		flag := int64(0)
		if geq {
			flag = 1
		}
		results[i] = &transport.Message{Kind: transport.KindResult, Flags: []int64{flag}}
	}
	frame, err = transport.WrapBatch(results)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ctx, frame); err != nil {
		return nil, fmt.Errorf("dgk: send result batch: %w", err)
	}
	comparisonsB.Add(int64(n))
	return out, nil
}

// shiftSignedAll maps every value through shiftSigned.
func shiftSignedAll(vals []*big.Int, l int) ([]*big.Int, error) {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		s, err := shiftSigned(v, l)
		if err != nil {
			return nil, fmt.Errorf("dgk: batch item %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}
