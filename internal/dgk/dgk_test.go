package dgk

import (
	"context"
	"math/big"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/privconsensus/privconsensus/internal/transport"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

var (
	sharedKeyOnce sync.Once
	sharedKey     *PrivateKey
)

// sharedTestKey generates one small key reused across tests (DGK keygen is
// the slow part).
func sharedTestKey(t testing.TB) *PrivateKey {
	t.Helper()
	sharedKeyOnce.Do(func() {
		key, err := GenerateKey(testRNG(99), TestParams())
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		sharedKey = key
	})
	if sharedKey == nil {
		t.Fatal("shared key generation failed earlier")
	}
	return sharedKey
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"default", DefaultParams(), true},
		{"test", TestParams(), true},
		{"l too large", Params{NBits: 512, TBits: 160, U: 1009, L: 63}, false},
		{"l zero", Params{NBits: 512, TBits: 160, U: 1009, L: 0}, false},
		{"u too small", Params{NBits: 512, TBits: 160, U: 101, L: 40}, false},
		{"u composite", Params{NBits: 512, TBits: 160, U: 1000, L: 40}, false},
		{"modulus too small", Params{NBits: 64, TBits: 40, U: 1009, L: 40}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

// Structural key properties: g must have order u*v_p mod p (so g^{v_p} has
// order exactly u) and h must vanish under the zero test.
func TestKeyStructure(t *testing.T) {
	key := sharedTestKey(t)
	// h encrypts randomness only: h^r must zero-test as E(0)'s blinding.
	hEnc := &Ciphertext{C: new(big.Int).Set(key.H)}
	z, err := key.IsZero(hEnc)
	if err != nil {
		t.Fatal(err)
	}
	if !z {
		t.Error("h alone must decrypt to zero (it carries no message)")
	}
	// g encrypts 1 with zero randomness.
	gEnc := &Ciphertext{C: new(big.Int).Set(key.G)}
	m, err := key.Decrypt(gEnc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 1 {
		t.Errorf("g decrypts to %v, want 1", m)
	}
	// g^u must be indistinguishable from an encryption of zero.
	gu := new(big.Int).Exp(key.G, key.U, key.N)
	z, err = key.IsZero(&Ciphertext{C: gu})
	if err != nil {
		t.Fatal(err)
	}
	if !z {
		t.Error("g^u must zero-test true (plaintext space wraps at u)")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := sharedTestKey(t)
	rng := testRNG(1)
	for _, m := range []int64{0, 1, 2, 500, 1008} {
		c, err := key.Encrypt(rng, big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := key.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Cmp(big.NewInt(m)) != 0 {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	key := sharedTestKey(t)
	rng := testRNG(2)
	if _, err := key.Encrypt(rng, big.NewInt(1009)); err == nil {
		t.Error("expected error for m = u")
	}
	if _, err := key.Encrypt(rng, big.NewInt(-1)); err == nil {
		t.Error("expected error for negative m")
	}
	if _, err := key.EncryptBit(rng, 2); err == nil {
		t.Error("expected error for non-bit")
	}
}

func TestIsZero(t *testing.T) {
	key := sharedTestKey(t)
	rng := testRNG(3)
	zero, err := key.Encrypt(rng, big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	if z, err := key.IsZero(zero); err != nil || !z {
		t.Errorf("IsZero(E[0]) = %v, %v; want true", z, err)
	}
	one, err := key.Encrypt(rng, big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if z, err := key.IsZero(one); err != nil || z {
		t.Errorf("IsZero(E[1]) = %v, %v; want false", z, err)
	}
}

func TestHomomorphicOps(t *testing.T) {
	key := sharedTestKey(t)
	rng := testRNG(4)
	u := key.U.Int64()

	ca, _ := key.Encrypt(rng, big.NewInt(700))
	cb, _ := key.Encrypt(rng, big.NewInt(400))
	sum, err := key.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != (700+400)%u {
		t.Errorf("Add: %v, want %d", got, (700+400)%u)
	}

	scaled, err := key.ScalarMul(ca, big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err = key.Decrypt(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != (700*5)%u {
		t.Errorf("ScalarMul: %v, want %d", got, (700*5)%u)
	}

	shifted, err := key.AddPlain(ca, big.NewInt(-100))
	if err != nil {
		t.Fatal(err)
	}
	got, err = key.Decrypt(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 600 {
		t.Errorf("AddPlain(-100): %v, want 600", got)
	}

	neg, err := key.Neg(ca)
	if err != nil {
		t.Fatal(err)
	}
	got, err = key.Decrypt(neg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != u-700 {
		t.Errorf("Neg: %v, want %d", got, u-700)
	}
}

func TestHomomorphicAddQuick(t *testing.T) {
	key := sharedTestKey(t)
	rng := testRNG(5)
	u := key.U.Int64()
	f := func(x, y uint16) bool {
		a, b := int64(x)%u, int64(y)%u
		ca, err := key.Encrypt(rng, big.NewInt(a))
		if err != nil {
			return false
		}
		cb, err := key.Encrypt(rng, big.NewInt(b))
		if err != nil {
			return false
		}
		sum, err := key.Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := key.Decrypt(sum)
		if err != nil {
			return false
		}
		return got.Int64() == (a+b)%u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextValidation(t *testing.T) {
	key := sharedTestKey(t)
	if _, err := key.Decrypt(nil); err == nil {
		t.Error("expected error for nil ciphertext")
	}
	if _, err := key.IsZero(&Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Error("expected error for zero ciphertext value")
	}
	if _, err := key.Decrypt(&Ciphertext{C: new(big.Int).Set(key.N)}); err == nil {
		t.Error("expected error for out-of-range ciphertext")
	}
}

// runCompare executes the comparison protocol over an in-memory transport
// and checks both parties agree.
func runCompare(t *testing.T, key *PrivateKey, a, b *big.Int, signed bool) bool {
	t.Helper()
	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()
	ctx := context.Background()

	type result struct {
		geq bool
		err error
	}
	resA := make(chan result, 1)
	go func() {
		rng := testRNG(11)
		var geq bool
		var err error
		if signed {
			geq, err = key.Public().CompareSignedA(ctx, rng, connA, a)
		} else {
			geq, err = key.Public().CompareA(ctx, rng, connA, a)
		}
		resA <- result{geq, err}
	}()

	rng := testRNG(12)
	var geqB bool
	var err error
	if signed {
		geqB, err = key.CompareSignedB(ctx, rng, connB, b)
	} else {
		geqB, err = key.CompareB(ctx, rng, connB, b)
	}
	if err != nil {
		t.Fatalf("CompareB: %v", err)
	}
	ra := <-resA
	if ra.err != nil {
		t.Fatalf("CompareA: %v", ra.err)
	}
	if ra.geq != geqB {
		t.Fatalf("parties disagree: A=%v B=%v", ra.geq, geqB)
	}
	return geqB
}

func TestCompareProtocol(t *testing.T) {
	key := sharedTestKey(t)
	cases := []struct {
		a, b int64
		want bool // a >= b
	}{
		{0, 0, true},
		{1, 0, true},
		{0, 1, false},
		{100, 100, true},
		{12345, 12344, true},
		{12344, 12345, false},
		{1 << 39, 0, true},
		{0, 1 << 39, false},
		{1<<40 - 1, 1<<40 - 2, true},
	}
	for _, c := range cases {
		got := runCompare(t, key, big.NewInt(c.a), big.NewInt(c.b), false)
		if got != c.want {
			t.Errorf("compare(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareSignedProtocol(t *testing.T) {
	key := sharedTestKey(t)
	cases := []struct {
		a, b int64
		want bool
	}{
		{-5, -10, true},
		{-10, -5, false},
		{-1, 0, false},
		{0, -1, true},
		{-(1 << 38), 1 << 38, false},
		{1 << 38, -(1 << 38), true},
		{-7, -7, true},
	}
	for _, c := range cases {
		got := runCompare(t, key, big.NewInt(c.a), big.NewInt(c.b), true)
		if got != c.want {
			t.Errorf("compareSigned(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareProtocolQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("interactive comparison is slow in -short mode")
	}
	key := sharedTestKey(t)
	f := func(x, y uint32) bool {
		a, b := big.NewInt(int64(x)), big.NewInt(int64(y))
		got := runCompare(t, key, a, b, false)
		return got == (x >= y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareRejectsOutOfRange(t *testing.T) {
	key := sharedTestKey(t)
	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()
	ctx := context.Background()
	huge := new(big.Int).Lsh(big.NewInt(1), 41)
	if _, err := key.Public().CompareA(ctx, testRNG(1), connA, huge); err == nil {
		t.Error("expected range error on A side")
	}
	if _, err := key.CompareB(ctx, testRNG(1), connB, huge); err == nil {
		t.Error("expected range error on B side")
	}
	if _, err := key.Public().CompareSignedA(ctx, testRNG(1), connA, new(big.Int).Neg(huge)); err == nil {
		t.Error("expected signed range error")
	}
}

func TestCompareContextCancel(t *testing.T) {
	key := sharedTestKey(t)
	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := key.Public().CompareA(ctx, testRNG(1), connA, big.NewInt(5)); err == nil {
		t.Error("expected context error")
	}
	_ = connB
}

func TestCiphertextClone(t *testing.T) {
	key := sharedTestKey(t)
	c, err := key.Encrypt(testRNG(70), big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	clone := c.Clone()
	clone.C.Add(clone.C, big.NewInt(1))
	if c.C.Cmp(clone.C) == 0 {
		t.Error("clone should be independent")
	}
	var nilC *Ciphertext
	if nilC.Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestGenerateKeyRejectsBadParams(t *testing.T) {
	if _, err := GenerateKey(testRNG(71), Params{NBits: 64, TBits: 40, U: 1009, L: 40}); err == nil {
		t.Error("expected error for undersized modulus")
	}
	if _, err := GenerateKey(testRNG(72), Params{NBits: 512, TBits: 160, U: 15, L: 40}); err == nil {
		t.Error("expected error for tiny composite plaintext space")
	}
}
