package dgk

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sync"

	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// MaterialPool extends the offline/online split beyond NoncePool's h^r
// blinding factors: it precomputes the key owner's COMPLETE round-1 payload
// for a comparison — fresh encryptions of both bit values at every position —
// during idle time between instances. The online phase then reduces to a
// table pick per bit: no exponentiations, no multiplications, just selecting
// E(b_i) from the precomputed {E(0), E(1)} pair. The material is input
// independent (both bit values are encrypted before b is known) and single
// use (the unselected ciphertext is discarded, never reused, so ciphertexts
// stay unlinkable across comparisons).
type MaterialPool struct {
	pk      *PublicKey
	items   chan *CmpMaterial
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	fillErr error
	errOnce sync.Once
}

// CmpMaterial is the precomputed key-owner material for one comparison:
// for each of the L bit positions, fresh encryptions of 0 and 1.
type CmpMaterial struct {
	pairs [][2]*Ciphertext
}

// Bit returns the precomputed encryption of `bit` at position pos.
func (m *CmpMaterial) Bit(pos int, bit uint8) (*Ciphertext, error) {
	if pos < 0 || pos >= len(m.pairs) {
		return nil, fmt.Errorf("dgk: material bit position %d out of range [0, %d)", pos, len(m.pairs))
	}
	if bit > 1 {
		return nil, fmt.Errorf("dgk: material bit value %d is not a bit", bit)
	}
	return m.pairs[pos][bit], nil
}

// NewMaterialPool starts `workers` goroutines keeping up to `capacity`
// comparisons' worth of precomputed material available. rng must be
// concurrency-safe when workers > 1.
func NewMaterialPool(rng io.Reader, pk *PublicKey, capacity, workers int) (*MaterialPool, error) {
	if capacity <= 0 || workers <= 0 {
		return nil, fmt.Errorf("dgk: material pool capacity %d and workers %d must be positive", capacity, workers)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &MaterialPool{
		pk:     pk,
		items:  make(chan *CmpMaterial, capacity),
		cancel: cancel,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.fill(ctx, rng)
	}
	return p, nil
}

// fill keeps the pool topped up until cancelled.
func (p *MaterialPool) fill(ctx context.Context, rng io.Reader) {
	defer p.wg.Done()
	zero := big.NewInt(0)
	one := big.NewInt(1)
	for {
		m := &CmpMaterial{pairs: make([][2]*Ciphertext, p.pk.L)}
		for i := 0; i < p.pk.L; i++ {
			c0, err := p.pk.Encrypt(rng, zero)
			if err != nil {
				p.errOnce.Do(func() { p.fillErr = err })
				return
			}
			c1, err := p.pk.Encrypt(rng, one)
			if err != nil {
				p.errOnce.Do(func() { p.fillErr = err })
				return
			}
			m.pairs[i] = [2]*Ciphertext{c0, c1}
		}
		select {
		case p.items <- m:
			materialRefills.Inc()
			materialPrefill.Set(float64(len(p.items)))
		case <-ctx.Done():
			return
		}
	}
}

// Next returns precomputed material for one comparison. A draw satisfied
// without waiting counts as a hit; one that has to block for a refill worker
// counts as a miss.
func (p *MaterialPool) Next(ctx context.Context) (*CmpMaterial, error) {
	select {
	case m, ok := <-p.items:
		if !ok {
			return nil, ErrPoolClosed
		}
		materialHits.Inc()
		materialPrefill.Set(float64(len(p.items)))
		return m, nil
	default:
	}
	materialMisses.Inc()
	select {
	case m, ok := <-p.items:
		if !ok {
			return nil, ErrPoolClosed
		}
		materialPrefill.Set(float64(len(p.items)))
		return m, nil
	case <-ctx.Done():
		if p.fillErr != nil {
			return nil, p.fillErr
		}
		return nil, ctx.Err()
	}
}

// Close stops the background workers.
func (p *MaterialPool) Close() {
	p.cancel()
	p.wg.Wait()
	close(p.items)
	for range p.items {
		// Drain so the retained ciphertexts become collectable.
	}
	materialPrefill.Set(0)
}

// CompareBMaterial is CompareB with the key owner's round-1 bit encryptions
// drawn fully precomputed from a material pool: the online cost per bit is a
// table pick instead of an encryption.
func (k *PrivateKey) CompareBMaterial(ctx context.Context, pool *MaterialPool, conn transport.Conn, b *big.Int) (bool, error) {
	vals, err := k.materialBits(ctx, pool, b)
	if err != nil {
		return false, err
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindBits, Values: vals}); err != nil {
		return false, fmt.Errorf("dgk: send encrypted bits: %w", err)
	}
	return k.finishCompareB(ctx, conn)
}

// CompareSignedBMaterial is CompareBMaterial for signed inputs.
func (k *PrivateKey) CompareSignedBMaterial(ctx context.Context, pool *MaterialPool, conn transport.Conn, b *big.Int) (bool, error) {
	shifted, err := shiftSigned(b, k.L)
	if err != nil {
		return false, err
	}
	return k.CompareBMaterial(ctx, pool, conn, shifted)
}

// CompareBatchBMaterial is CompareBatchB with every comparison's bit
// encryptions drawn from the material pool.
func (k *PrivateKey) CompareBatchBMaterial(ctx context.Context, pool *MaterialPool, conn transport.Conn, vals []*big.Int, par int) ([]bool, error) {
	mats := make([]*CmpMaterial, len(vals))
	for i := range vals {
		m, err := pool.Next(ctx)
		if err != nil {
			return nil, fmt.Errorf("dgk: material for batch item %d: %w", i, err)
		}
		mats[i] = m
	}
	return k.compareBatchB(ctx, conn, vals, par,
		func(_ context.Context, item, pos int, bit uint8) (*Ciphertext, error) {
			return mats[item].Bit(pos, bit)
		})
}

// CompareSignedBatchBMaterial is CompareBatchBMaterial for signed values.
func (k *PrivateKey) CompareSignedBatchBMaterial(ctx context.Context, pool *MaterialPool, conn transport.Conn, vals []*big.Int, par int) ([]bool, error) {
	shifted, err := shiftSignedAll(vals, k.L)
	if err != nil {
		return nil, err
	}
	return k.CompareBatchBMaterial(ctx, pool, conn, shifted, par)
}

// materialBits assembles one comparison's round-1 payload from pooled
// material.
func (k *PrivateKey) materialBits(ctx context.Context, pool *MaterialPool, b *big.Int) ([]*big.Int, error) {
	if err := checkRange(b, k.L); err != nil {
		return nil, fmt.Errorf("dgk: CompareBMaterial: %w", err)
	}
	bBits, err := mathutil.Bits(b, k.L)
	if err != nil {
		return nil, err
	}
	m, err := pool.Next(ctx)
	if err != nil {
		return nil, err
	}
	vals := make([]*big.Int, k.L)
	for i, bit := range bBits {
		c, err := m.Bit(i, bit)
		if err != nil {
			return nil, err
		}
		vals[i] = c.C
	}
	return vals, nil
}
