package dgk

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// NoncePool pre-generates the h^r blinding factors that dominate DGK
// bit-encryption cost, applying the paper's randomness-table optimization
// (§VI-A) to the comparison protocol: the key owner must encrypt L bits per
// comparison, and with a warm pool each encryption collapses to one
// multiplication.
type NoncePool struct {
	pk      *PublicKey
	nonces  chan *big.Int
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	fillErr error
	errOnce sync.Once
}

// ErrPoolClosed is returned when drawing from a closed pool.
var ErrPoolClosed = errors.New("dgk: nonce pool closed")

// NewNoncePool starts `workers` goroutines keeping up to `capacity`
// precomputed h^r values available. rng must be concurrency-safe when
// workers > 1.
func NewNoncePool(rng io.Reader, pk *PublicKey, capacity, workers int) (*NoncePool, error) {
	if capacity <= 0 || workers <= 0 {
		return nil, fmt.Errorf("dgk: pool capacity %d and workers %d must be positive", capacity, workers)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &NoncePool{
		pk:     pk,
		nonces: make(chan *big.Int, capacity),
		cancel: cancel,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.fill(ctx, rng)
	}
	return p, nil
}

// fill keeps the pool topped up until cancelled.
func (p *NoncePool) fill(ctx context.Context, rng io.Reader) {
	defer p.wg.Done()
	for {
		r, err := mathutil.RandBits(rng, p.pk.RBits)
		if err != nil {
			p.errOnce.Do(func() { p.fillErr = err })
			return
		}
		// Refill through the shared fixed-base table (identical value to
		// big.Int.Exp, a fraction of the multiplications).
		var hr *big.Int
		if ht := p.pk.hTable(); ht != nil {
			hr = ht.Exp(r)
		} else {
			hr = new(big.Int).Exp(p.pk.H, r, p.pk.N)
		}
		select {
		case p.nonces <- hr:
			poolRefills.Inc()
		case <-ctx.Done():
			return
		}
	}
}

// Next returns a precomputed h^r value. A draw satisfied without waiting
// counts as a pool hit; one that has to block for a refill worker counts as
// a miss.
func (p *NoncePool) Next(ctx context.Context) (*big.Int, error) {
	select {
	case hr, ok := <-p.nonces:
		if !ok {
			return nil, ErrPoolClosed
		}
		poolHits.Inc()
		return hr, nil
	default:
	}
	poolMisses.Inc()
	select {
	case hr, ok := <-p.nonces:
		if !ok {
			return nil, ErrPoolClosed
		}
		return hr, nil
	case <-ctx.Done():
		if p.fillErr != nil {
			return nil, p.fillErr
		}
		return nil, ctx.Err()
	}
}

// Encrypt encrypts m using a pooled blinding factor.
func (p *NoncePool) Encrypt(ctx context.Context, m *big.Int) (*Ciphertext, error) {
	if err := p.pk.validateMessage(m); err != nil {
		return nil, err
	}
	hr, err := p.Next(ctx)
	if err != nil {
		return nil, err
	}
	var gm *big.Int
	if gt := p.pk.gTable(); gt != nil {
		gm = gt.Exp(m)
	} else {
		gm = new(big.Int).Exp(p.pk.G, m, p.pk.N)
	}
	c := gm.Mul(gm, hr)
	c.Mod(c, p.pk.N)
	encOps.Inc()
	return &Ciphertext{C: c}, nil
}

// Close stops the background workers.
func (p *NoncePool) Close() {
	p.cancel()
	p.wg.Wait()
	close(p.nonces)
	for range p.nonces {
		// Drain so the retained big.Ints become collectable.
	}
}

// CompareBPooled is CompareB with the key owner's bit encryptions drawn
// from a warm nonce pool, removing the dominant per-comparison
// exponentiations from the critical path.
func (k *PrivateKey) CompareBPooled(ctx context.Context, pool *NoncePool, conn transport.Conn, b *big.Int) (bool, error) {
	if err := checkRange(b, k.L); err != nil {
		return false, fmt.Errorf("dgk: CompareBPooled: %w", err)
	}
	bBits, err := mathutil.Bits(b, k.L)
	if err != nil {
		return false, err
	}
	vals := make([]*big.Int, k.L)
	for i, bit := range bBits {
		c, err := pool.Encrypt(ctx, big.NewInt(int64(bit)))
		if err != nil {
			return false, fmt.Errorf("dgk: pooled bit encryption: %w", err)
		}
		vals[i] = c.C
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindBits, Values: vals}); err != nil {
		return false, fmt.Errorf("dgk: send encrypted bits: %w", err)
	}
	return k.finishCompareB(ctx, conn)
}

// CompareSignedBPooled is CompareBPooled for signed inputs.
func (k *PrivateKey) CompareSignedBPooled(ctx context.Context, pool *NoncePool, conn transport.Conn, b *big.Int) (bool, error) {
	shifted, err := shiftSigned(b, k.L)
	if err != nil {
		return false, err
	}
	return k.CompareBPooled(ctx, pool, conn, shifted)
}
