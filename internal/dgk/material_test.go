package dgk

import (
	"context"
	"math/big"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/transport"
)

func TestMaterialPoolBitsDecrypt(t *testing.T) {
	key := sharedTestKey(t)
	pool, err := NewMaterialPool(testRNG(41), key.Public(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	m, err := pool.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.pairs) != key.L {
		t.Fatalf("material has %d pairs, want %d", len(m.pairs), key.L)
	}
	for pos := 0; pos < key.L; pos++ {
		for bit := uint8(0); bit <= 1; bit++ {
			c, err := m.Bit(pos, bit)
			if err != nil {
				t.Fatal(err)
			}
			got, err := key.Decrypt(c)
			if err != nil {
				t.Fatal(err)
			}
			if got.Int64() != int64(bit) {
				t.Errorf("pos %d bit %d decrypts to %v", pos, bit, got)
			}
		}
	}
	if _, err := m.Bit(-1, 0); err == nil {
		t.Error("expected position range error")
	}
	if _, err := m.Bit(key.L, 0); err == nil {
		t.Error("expected position range error")
	}
	if _, err := m.Bit(0, 2); err == nil {
		t.Error("expected bit value error")
	}
}

func TestMaterialPoolValidation(t *testing.T) {
	key := sharedTestKey(t)
	if _, err := NewMaterialPool(testRNG(1), key.Public(), 0, 1); err == nil {
		t.Error("expected capacity error")
	}
	if _, err := NewMaterialPool(testRNG(1), key.Public(), 1, 0); err == nil {
		t.Error("expected worker error")
	}
}

func TestMaterialPoolClose(t *testing.T) {
	key := sharedTestKey(t)
	pool, err := NewMaterialPool(lockRNG(42), key.Public(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	if _, err := pool.Next(context.Background()); err != ErrPoolClosed {
		t.Errorf("Next after Close = %v, want ErrPoolClosed", err)
	}
}

// The material-backed comparisons must agree with the plaintext comparison,
// in both the single and batched forms.
func TestCompareMaterialMatchesPlain(t *testing.T) {
	key := sharedTestKey(t)
	pool, err := NewMaterialPool(testRNG(43), key.Public(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	aVals := []int64{5, 3, -7, -10, 1 << 30}
	bVals := []int64{3, 5, -7, 4, -(1 << 30)}
	want := []bool{true, false, true, false, true}

	// Single comparisons through the material pool.
	for i := range aVals {
		connA, connB := transport.Pair()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		type res struct {
			geq bool
			err error
		}
		ch := make(chan res, 1)
		go func() {
			geq, err := key.Public().CompareSignedA(ctx, testRNG(44), connA, big.NewInt(aVals[i]))
			ch <- res{geq, err}
		}()
		geqB, err := key.CompareSignedBMaterial(ctx, pool, connB, big.NewInt(bVals[i]))
		if err != nil {
			t.Fatalf("CompareSignedBMaterial(%d, %d): %v", aVals[i], bVals[i], err)
		}
		ra := <-ch
		cancel()
		connA.Close()
		connB.Close()
		if ra.err != nil {
			t.Fatalf("CompareSignedA: %v", ra.err)
		}
		if geqB != want[i] || ra.geq != want[i] {
			t.Errorf("material compare(%d, %d) = A:%v B:%v, want %v",
				aVals[i], bVals[i], ra.geq, geqB, want[i])
		}
	}

	// Batched comparisons through the material pool, at both worker counts.
	for _, par := range []int{1, 4} {
		geqA, geqB := runBatch(t, key, aVals, bVals, par,
			func(ctx context.Context, connB transport.Conn, shifted []*big.Int) ([]bool, error) {
				return key.CompareSignedBatchBMaterial(ctx, pool, connB, shifted, par)
			})
		for i := range want {
			if geqA[i] != want[i] || geqB[i] != want[i] {
				t.Errorf("par %d item %d: material batch compare(%d, %d) = A:%v B:%v, want %v",
					par, i, aVals[i], bVals[i], geqA[i], geqB[i], want[i])
			}
		}
	}
}
