package dgk

import "github.com/privconsensus/privconsensus/internal/obs"

// Process-wide operation counters on the obs default registry. They count
// only operations — never compared values, bits or key material.
var (
	encOps = obs.Default.Counter("dgk_encrypt_total",
		"DGK encryptions, fresh-nonce and pooled (bit encryptions included).")
	zeroTests = obs.Default.Counter("dgk_zerotest_total",
		"DGK zero tests (the comparison protocol's decryption primitive).")
	decOps = obs.Default.Counter("dgk_decrypt_total",
		"Full DGK table decryptions.")
	comparisons = obs.Default.Counter("dgk_comparisons_total",
		"Completed interactive DGK comparisons, labelled by party.",
		obs.L("party", "a"))
	comparisonsB = obs.Default.Counter("dgk_comparisons_total",
		"Completed interactive DGK comparisons, labelled by party.",
		obs.L("party", "b"))
	poolHits = obs.Default.Counter("dgk_pool_hits_total",
		"Nonce pool draws satisfied without blocking.")
	poolMisses = obs.Default.Counter("dgk_pool_misses_total",
		"Nonce pool draws that had to wait for a refill worker.")
	poolRefills = obs.Default.Counter("dgk_pool_refills_total",
		"h^r blinding factors precomputed by nonce pool workers.")
	materialHits = obs.Default.Counter("dgk_material_hits_total",
		"Material pool draws satisfied without blocking.")
	materialMisses = obs.Default.Counter("dgk_material_misses_total",
		"Material pool draws that had to wait for a refill worker.")
	materialRefills = obs.Default.Counter("dgk_material_refills_total",
		"Full comparisons' worth of bit-encryption material precomputed by pool workers.")
	materialPrefill = obs.Default.Gauge("dgk_material_pool_prefill",
		"Comparisons' worth of precomputed material currently buffered in the pool.")
)

// WatchOps registers this package's operation counters on a tracer so each
// QueryTrace span records the DGK work done during its phase.
func WatchOps(t *obs.Tracer) {
	t.Watch("dgk_enc", encOps)
	t.Watch("dgk_zerotest", zeroTests)
	t.Watch("dgk_cmp_a", comparisons)
	t.Watch("dgk_cmp_b", comparisonsB)
	t.Watch("dgk_pool_miss", poolMisses)
	t.Watch("dgk_material_miss", materialMisses)
}
