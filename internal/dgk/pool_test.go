package dgk

import (
	"context"
	"math/big"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/transport"
)

func TestNoncePoolEncryptDecrypts(t *testing.T) {
	key := sharedTestKey(t)
	pool, err := NewNoncePool(testRNG(31), key.Public(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	for _, m := range []int64{0, 1, 777} {
		c, err := pool.Encrypt(ctx, big.NewInt(m))
		if err != nil {
			t.Fatalf("pooled encrypt %d: %v", m, err)
		}
		got, err := key.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Errorf("pooled round trip %d -> %v", m, got)
		}
	}
	if _, err := pool.Encrypt(ctx, big.NewInt(2000)); err == nil {
		t.Error("expected range error for m >= u")
	}
}

func TestNoncePoolValidation(t *testing.T) {
	key := sharedTestKey(t)
	if _, err := NewNoncePool(testRNG(1), key.Public(), 0, 1); err == nil {
		t.Error("expected capacity error")
	}
	if _, err := NewNoncePool(testRNG(1), key.Public(), 1, 0); err == nil {
		t.Error("expected worker error")
	}
}

func TestNoncePoolContextCancel(t *testing.T) {
	key := sharedTestKey(t)
	pool, err := NewNoncePool(testRNG(32), key.Public(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 10; i++ {
		if _, err := pool.Encrypt(ctx, big.NewInt(1)); err != nil {
			return // cancellation surfaced once the buffer drained
		}
	}
	t.Error("expected context cancellation")
}

// The pooled comparison must agree with the plaintext comparison and with
// the unpooled path.
func TestCompareBPooledMatchesPlain(t *testing.T) {
	key := sharedTestKey(t)
	pool, err := NewNoncePool(testRNG(33), key.Public(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cases := []struct {
		a, b int64
		want bool
	}{
		{5, 3, true},
		{3, 5, false},
		{-7, -7, true},
		{-10, 4, false},
		{1 << 30, -(1 << 30), true},
	}
	for _, c := range cases {
		connA, connB := transport.Pair()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		type res struct {
			geq bool
			err error
		}
		ch := make(chan res, 1)
		go func() {
			geq, err := key.Public().CompareSignedA(ctx, testRNG(34), connA, big.NewInt(c.a))
			ch <- res{geq, err}
		}()
		geqB, err := key.CompareSignedBPooled(ctx, pool, connB, big.NewInt(c.b))
		if err != nil {
			t.Fatalf("CompareSignedBPooled(%d, %d): %v", c.a, c.b, err)
		}
		ra := <-ch
		cancel()
		connA.Close()
		connB.Close()
		if ra.err != nil {
			t.Fatalf("CompareSignedA: %v", ra.err)
		}
		if geqB != c.want || ra.geq != c.want {
			t.Errorf("pooled compare(%d, %d) = A:%v B:%v, want %v", c.a, c.b, ra.geq, geqB, c.want)
		}
	}
}

func TestCompareBPooledRange(t *testing.T) {
	key := sharedTestKey(t)
	pool, err := NewNoncePool(testRNG(35), key.Public(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()
	huge := new(big.Int).Lsh(big.NewInt(1), 60)
	if _, err := key.CompareBPooled(context.Background(), pool, connB, huge); err == nil {
		t.Error("expected range error")
	}
	if _, err := key.CompareSignedBPooled(context.Background(), pool, connB, new(big.Int).Neg(huge)); err == nil {
		t.Error("expected signed range error")
	}
}
