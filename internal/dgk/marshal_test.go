package dgk

import (
	"encoding/json"
	"math/big"
	"testing"
)

func TestPublicKeyJSONRoundTrip(t *testing.T) {
	key := sharedTestKey(t)
	data, err := json.Marshal(key.Public())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back PublicKey
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.N.Cmp(key.N) != 0 || back.G.Cmp(key.G) != 0 || back.H.Cmp(key.H) != 0 {
		t.Error("public key elements not preserved")
	}
	if back.RBits != key.RBits || back.L != key.L || back.U.Cmp(key.U) != 0 {
		t.Error("public key parameters not preserved")
	}
	// Encrypt with the reloaded key, decrypt with the original.
	c, err := back.Encrypt(testRNG(40), big.NewInt(123))
	if err != nil {
		t.Fatal(err)
	}
	m, err := key.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 123 {
		t.Errorf("cross-key round trip = %v", m)
	}
}

func TestPrivateKeyJSONRoundTrip(t *testing.T) {
	key := sharedTestKey(t)
	data, err := json.Marshal(key)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back PrivateKey
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// The rebuilt decryption table must work.
	c, err := key.Encrypt(testRNG(41), big.NewInt(888))
	if err != nil {
		t.Fatal(err)
	}
	m, err := back.Decrypt(c)
	if err != nil {
		t.Fatalf("decrypt with reloaded key: %v", err)
	}
	if m.Int64() != 888 {
		t.Errorf("reloaded decrypt = %v", m)
	}
	// Zero test too.
	zero, err := key.Encrypt(testRNG(42), big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	isZero, err := back.IsZero(zero)
	if err != nil || !isZero {
		t.Errorf("reloaded IsZero = %v, %v", isZero, err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var pk PublicKey
	if err := json.Unmarshal([]byte(`{"n":"0","g":"1","h":"1","u":1009,"rBits":100,"l":40}`), &pk); err == nil {
		t.Error("expected error for zero modulus")
	}
	if err := json.Unmarshal([]byte(`{"n":"77","g":"2","h":"3","u":1009,"rBits":100,"l":99}`), &pk); err == nil {
		t.Error("expected error for out-of-range L")
	}
	var k PrivateKey
	if err := json.Unmarshal([]byte(`{"public":{"n":"77","g":"2","h":"3","u":1009,"rBits":100,"l":40},"p":"8","vp":"5"}`), &k); err == nil {
		t.Error("expected error for composite secret prime")
	}
	if err := json.Unmarshal([]byte(`{"public":{"n":"77","g":"2","h":"3","u":1009,"rBits":100,"l":40},"p":"13","vp":"5"}`), &k); err == nil {
		t.Error("expected error when p does not divide n")
	}
}

func TestMarshalZeroKeys(t *testing.T) {
	var pk PublicKey
	if _, err := json.Marshal(&pk); err == nil {
		t.Error("expected error marshaling zero public key")
	}
	var k PrivateKey
	if _, err := json.Marshal(&k); err == nil {
		t.Error("expected error marshaling zero private key")
	}
}
