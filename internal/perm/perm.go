// Package perm implements the random permutations used by the
// Blind-and-Permute and Restoration protocols (Algs. 2 and 3): generation,
// composition, inversion, and application to sequences of big integers.
package perm

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// Permutation represents a permutation of {0, ..., K-1}. p[i] = j means the
// element at source index i moves to destination index j, i.e.
// Apply(seq)[p[i]] = seq[i].
type Permutation []int

// New returns a uniformly random permutation of size k using the
// Fisher-Yates shuffle with cryptographic randomness from rng (crypto/rand
// if nil).
func New(rng io.Reader, k int) (Permutation, error) {
	if k <= 0 {
		return nil, fmt.Errorf("perm: size must be positive, got %d", k)
	}
	if rng == nil {
		rng = rand.Reader
	}
	p := make(Permutation, k)
	for i := range p {
		p[i] = i
	}
	for i := k - 1; i > 0; i-- {
		jBig, err := rand.Int(rng, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("perm: sample shuffle index: %w", err)
		}
		j := int(jBig.Int64())
		p[i], p[j] = p[j], p[i]
	}
	return p, nil
}

// Identity returns the identity permutation of size k.
func Identity(k int) Permutation {
	p := make(Permutation, k)
	for i := range p {
		p[i] = i
	}
	return p
}

// Valid reports whether p is a bijection on {0, ..., len(p)-1}.
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the permutation q with q[p[i]] = i.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// Compose returns the permutation that first applies q then p, i.e.
// (p ∘ q)[i] = p[q[i]]. Applying the result equals Apply(p, Apply(q, seq)).
func (p Permutation) Compose(q Permutation) (Permutation, error) {
	if len(p) != len(q) {
		return nil, fmt.Errorf("perm: size mismatch %d vs %d", len(p), len(q))
	}
	out := make(Permutation, len(p))
	for i := range q {
		out[i] = p[q[i]]
	}
	return out, nil
}

// Apply permutes seq: out[p[i]] = seq[i]. The input is not modified; the
// returned slice aliases the same *big.Int values (callers treat plaintext
// sequences as immutable).
func (p Permutation) Apply(seq []*big.Int) ([]*big.Int, error) {
	if len(seq) != len(p) {
		return nil, fmt.Errorf("perm: sequence length %d does not match permutation size %d", len(seq), len(p))
	}
	out := make([]*big.Int, len(seq))
	for i, v := range seq {
		out[p[i]] = v
	}
	return out, nil
}

// ApplyInverse undoes Apply: ApplyInverse(Apply(seq)) == seq.
func (p Permutation) ApplyInverse(seq []*big.Int) ([]*big.Int, error) {
	return p.Inverse().Apply(seq)
}

// Image returns p[i], the destination index of source index i.
func (p Permutation) Image(i int) (int, error) {
	if i < 0 || i >= len(p) {
		return 0, fmt.Errorf("perm: index %d out of range [0, %d)", i, len(p))
	}
	return p[i], nil
}

// Preimage returns the source index that maps to destination index j.
func (p Permutation) Preimage(j int) (int, error) {
	if j < 0 || j >= len(p) {
		return 0, fmt.Errorf("perm: index %d out of range [0, %d)", j, len(p))
	}
	for i, v := range p {
		if v == j {
			return i, nil
		}
	}
	return 0, fmt.Errorf("perm: invalid permutation, no preimage for %d", j)
}

// OneHot returns a length-k vector with a 1 at index i and 0 elsewhere,
// the e_i vector used by the Restoration protocol (Alg. 3).
func OneHot(k, i int) ([]*big.Int, error) {
	if i < 0 || i >= k {
		return nil, fmt.Errorf("perm: one-hot index %d out of range [0, %d)", i, k)
	}
	out := make([]*big.Int, k)
	for j := range out {
		out[j] = big.NewInt(0)
	}
	out[i] = big.NewInt(1)
	return out, nil
}

// ArgOne returns the index of the single 1 in a one-hot vector, or an error
// if the vector is not one-hot.
func ArgOne(v []*big.Int) (int, error) {
	idx := -1
	for i, x := range v {
		switch {
		case x.Sign() == 0:
		case x.Cmp(big.NewInt(1)) == 0:
			if idx >= 0 {
				return 0, fmt.Errorf("perm: vector has multiple ones (indices %d and %d)", idx, i)
			}
			idx = i
		default:
			return 0, fmt.Errorf("perm: element %d = %v is not 0/1", i, x)
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("perm: vector has no one")
	}
	return idx, nil
}
