package perm

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func ints(vs ...int64) []*big.Int {
	out := make([]*big.Int, len(vs))
	for i, v := range vs {
		out[i] = big.NewInt(v)
	}
	return out
}

func equalSeq(a, b []*big.Int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			return false
		}
	}
	return true
}

func TestNewValid(t *testing.T) {
	rng := testRNG(1)
	for k := 1; k <= 50; k++ {
		p, err := New(rng, k)
		if err != nil {
			t.Fatalf("New(%d): %v", k, err)
		}
		if !p.Valid() {
			t.Fatalf("New(%d) produced invalid permutation %v", k, p)
		}
	}
	if _, err := New(rng, 0); err == nil {
		t.Fatal("expected error for size 0")
	}
}

func TestNewUniformish(t *testing.T) {
	// With k=3 over many samples every arrangement should appear.
	rng := testRNG(7)
	seen := map[string]int{}
	for i := 0; i < 600; i++ {
		p, err := New(rng, 3)
		if err != nil {
			t.Fatal(err)
		}
		key := string([]byte{byte(p[0]), byte(p[1]), byte(p[2])})
		seen[key]++
	}
	if len(seen) != 6 {
		t.Fatalf("expected all 6 permutations of 3 elements, saw %d", len(seen))
	}
}

func TestInverse(t *testing.T) {
	rng := testRNG(2)
	p, err := New(rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	inv := p.Inverse()
	id, err := p.Compose(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range id {
		if v != i {
			t.Fatalf("p ∘ p^-1 != identity at %d: %v", i, id)
		}
	}
}

func TestApplyInverseRoundTrip(t *testing.T) {
	rng := testRNG(3)
	p, err := New(rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq := ints(10, 20, 30, 40, 50, 60, 70, 80)
	ap, err := p.Apply(seq)
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.ApplyInverse(ap)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSeq(back, seq) {
		t.Fatalf("ApplyInverse(Apply(seq)) = %v, want %v", back, seq)
	}
}

func TestComposeMatchesSequentialApply(t *testing.T) {
	rng := testRNG(4)
	p1, _ := New(rng, 10)
	p2, _ := New(rng, 10)
	seq := ints(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)

	inner, err := p2.Apply(seq)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := p1.Apply(inner)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := p1.Compose(p2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := composed.Apply(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSeq(sequential, direct) {
		t.Fatalf("compose mismatch: sequential %v direct %v", sequential, direct)
	}
}

func TestApplySemantics(t *testing.T) {
	p := Permutation{2, 0, 1} // element 0 -> pos 2, 1 -> pos 0, 2 -> pos 1
	seq := ints(100, 200, 300)
	out, err := p.Apply(seq)
	if err != nil {
		t.Fatal(err)
	}
	want := ints(200, 300, 100)
	if !equalSeq(out, want) {
		t.Fatalf("Apply = %v, want %v", out, want)
	}
}

func TestApplyLengthMismatch(t *testing.T) {
	p := Identity(3)
	if _, err := p.Apply(ints(1, 2)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestImagePreimage(t *testing.T) {
	p := Permutation{2, 0, 1}
	img, err := p.Image(0)
	if err != nil || img != 2 {
		t.Fatalf("Image(0) = %d, %v; want 2", img, err)
	}
	pre, err := p.Preimage(2)
	if err != nil || pre != 0 {
		t.Fatalf("Preimage(2) = %d, %v; want 0", pre, err)
	}
	if _, err := p.Image(5); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := p.Preimage(-1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestOneHotArgOne(t *testing.T) {
	v, err := OneHot(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ArgOne(v)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("ArgOne = %d, want 3", idx)
	}
	if _, err := OneHot(5, 5); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := ArgOne(ints(0, 0)); err == nil {
		t.Fatal("expected error for no one")
	}
	if _, err := ArgOne(ints(1, 1)); err == nil {
		t.Fatal("expected error for multiple ones")
	}
	if _, err := ArgOne(ints(0, 2)); err == nil {
		t.Fatal("expected error for non-binary element")
	}
}

// Property: restoring a permuted one-hot vector recovers the original index.
func TestPermutedOneHotQuick(t *testing.T) {
	rng := testRNG(9)
	f := func(rawIdx uint8) bool {
		const k = 16
		i := int(rawIdx) % k
		p, err := New(rng, k)
		if err != nil {
			return false
		}
		v, err := OneHot(k, i)
		if err != nil {
			return false
		}
		pv, err := p.Apply(v)
		if err != nil {
			return false
		}
		// The one should now be at position p[i].
		at, err := ArgOne(pv)
		if err != nil || at != p[i] {
			return false
		}
		back, err := p.ApplyInverse(pv)
		if err != nil {
			return false
		}
		got, err := ArgOne(back)
		return err == nil && got == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidDetectsCorruption(t *testing.T) {
	if (Permutation{0, 0, 1}).Valid() {
		t.Error("duplicate entries should be invalid")
	}
	if (Permutation{0, 3, 1}).Valid() {
		t.Error("out-of-range entries should be invalid")
	}
	if !Identity(4).Valid() {
		t.Error("identity should be valid")
	}
}
