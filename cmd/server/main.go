// Command server runs one of the two non-colluding protocol servers as a
// standalone process.
//
// S1 (listens for users and for S2):
//
//	server -role s1 -keys keys/s1.json -listen :9001 -instances 5
//
// S2 (listens for users, dials S1):
//
//	server -role s2 -keys keys/s2.json -listen :9002 -peer host1:9001 -instances 5
//
// Continuous operation (-serve): queries are admitted on demand instead of
// running a fixed instance count, -keys takes a comma-separated list of
// per-epoch key files, and admission enforces per-tenant ε quotas:
//
//	server -role s1 -serve -keys keys/s1.e0.json,keys/s1.e1.json \
//	    -ledger state/ledger.json -tenant-quota 1=2.5,2=1.0 -rotate-after 500
//
// In serve mode the first SIGINT/SIGTERM starts a graceful drain (stop
// admitting, finish in-flight queries, flush the ledger and journal), a
// second signal aborts, and SIGHUP requests an epoch/key rotation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	privconsensus "github.com/privconsensus/privconsensus"
	"github.com/privconsensus/privconsensus/internal/deploy"
	"github.com/privconsensus/privconsensus/internal/keystore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("server", flag.ContinueOnError)
	var (
		role      = fs.String("role", "", "server role: s1 or s2")
		keysPath  = fs.String("keys", "", "path to this server's key file")
		listen    = fs.String("listen", "127.0.0.1:0", "address to accept users (and, on s1, the peer)")
		peer      = fs.String("peer", "", "S1 address (required for s2)")
		instances = fs.Int("instances", 1, "number of query instances to run")
		timeout   = fs.Duration("timeout", 10*time.Minute, "overall deadline")
		seed      = fs.Int64("seed", 0, "deterministic seed (0 = crypto/rand)")
		par       = fs.Int("parallelism", 0, "protocol worker bound (0 = key file / NumCPU, 1 = sequential wire format; both servers must agree)")
		argmax    = fs.String("argmax", "", "argmax strategy: tournament (batched bracket, the default) or allpairs (legacy wire format; both servers must agree)")
		packed    = fs.String("packed", "", "slot-packed submissions: on, off, or empty for the key file's setting (changes the wire format; servers, relays and users must agree)")
		metrics   = fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = disabled)")
		linger    = fs.Duration("metrics-linger", 0, "keep the metrics endpoint up this long after the last instance")
		retries   = fs.Int("max-retries", 0, "per-instance retry budget on transient I/O failures (0 = legacy wire protocol; both servers must agree)")
		backoff   = fs.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per retry)")
		attemptTO = fs.Duration("attempt-timeout", 2*time.Minute, "deadline for each instance attempt and reconnect wait")
		faultSpec = fs.String("fault-spec", "", "inject deterministic connection faults, e.g. seed=7,reset=0.02,stall=0.01,max=20 (testing only)")
		quorum    = fs.Float64("quorum", 0, "minimum participants per query: a fraction of users in (0,1) or an absolute count >= 1 (0 = require full participation; both servers must agree)")
		deadline  = fs.Duration("submit-deadline", 0, "close the submission window this long after startup once quorum is met (0 with -quorum unset = wait for everyone)")
		journal   = fs.String("journal", "", "append a hash-chained JSONL event journal at this path and propagate a cross-process trace ID (both servers must agree; see cmd/trace)")
		logLevel  = fs.String("log-level", "", "log threshold: debug, info (default), warn or silent")
		serve     = fs.Bool("serve", false, "continuous operation: admit queries on demand instead of -instances; -keys becomes a comma-separated per-epoch list")
		sf        = serveFlags{
			ledger:       fs.String("ledger", "", "durable ε-accountant ledger path (serve mode, s1 only; empty = in-memory)"),
			tenantQuota:  fs.String("tenant-quota", "", "per-tenant ε quotas as tenant=epsilon,... (serve mode, s1 only)"),
			defaultQuota: fs.Float64("default-quota", 0, "ε quota for tenants not listed in -tenant-quota (0 = unlimited)"),
			budgetDelta:  fs.Float64("budget-delta", 0, "δ at which admission projects the ε spend (0 = 1e-6)"),
			maxInFlight:  fs.Int("max-inflight", 0, "admission window: concurrent in-flight queries (0 = default)"),
			rotateAfter:  fs.Int("rotate-after", 0, "rotate to the next epoch's keys after this many admissions (0 = only on SIGHUP)"),
			drainTimeout: fs.Duration("drain-timeout", 0, "bound on finishing in-flight queries during a graceful drain (0 = default)"),
		}
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keysPath == "" {
		return fmt.Errorf("-keys is required")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if !*serve {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}

	opts := deploy.ServerOptions{
		ListenAddr:     *listen,
		PeerAddr:       *peer,
		Instances:      *instances,
		Seed:           *seed,
		Parallelism:    *par,
		ArgmaxStrategy: *argmax,
		Packing:        *packed,
		MetricsAddr:    *metrics,
		MetricsLinger:  *linger,
		MaxRetries:     *retries,
		Backoff:        *backoff,
		AttemptTimeout: *attemptTO,
		FaultSpec:      *faultSpec,
		Quorum:         *quorum,
		SubmitDeadline: *deadline,
		JournalPath:    *journal,
		LogLevel:       *logLevel,
		Logf:           deploy.DefaultLogger("[" + *role + "] "),
	}

	if *serve {
		return runServe(ctx, *role, *keysPath, opts, sf)
	}

	var rep *deploy.Report
	switch *role {
	case "s1":
		var file keystore.S1File
		if err := keystore.Load(*keysPath, &file); err != nil {
			return err
		}
		var err error
		rep, err = deploy.RunS1Report(ctx, &file, opts)
		if err != nil {
			return err
		}
	case "s2":
		var file keystore.S2File
		if err := keystore.Load(*keysPath, &file); err != nil {
			return err
		}
		var err error
		rep, err = deploy.RunS2Report(ctx, &file, opts)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("-role must be s1 or s2, got %q", *role)
	}

	fmt.Printf("%s finished %d instances:\n", *role, len(rep.Results))
	for _, res := range rep.Results {
		part := ""
		if res.Dropped > 0 {
			part = fmt.Sprintf(" (%d of %d users)", res.Participants, res.Participants+res.Dropped)
		}
		switch {
		case errors.Is(res.Err, privconsensus.ErrQuorumNotMet):
			fmt.Printf("  instance %d: quorum not met%s\n", res.Instance, part)
		case res.Err != nil:
			fmt.Printf("  instance %d: FAILED after %d attempts: %v\n", res.Instance, res.Attempts, res.Err)
		case res.Outcome.Consensus:
			fmt.Printf("  instance %d: label %d%s\n", res.Instance, res.Outcome.Label, part)
		default:
			fmt.Printf("  instance %d: no consensus%s\n", res.Instance, part)
		}
	}
	if failed := rep.Failed(); len(failed) > 0 {
		return fmt.Errorf("%d of %d instances failed", len(failed), len(rep.Results))
	}
	return nil
}
