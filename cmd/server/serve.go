package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	privconsensus "github.com/privconsensus/privconsensus"
	"github.com/privconsensus/privconsensus/internal/deploy"
	"github.com/privconsensus/privconsensus/internal/keystore"
)

// serveFlags holds the flags that only apply to -serve mode.
type serveFlags struct {
	ledger       *string
	tenantQuota  *string
	defaultQuota *float64
	budgetDelta  *float64
	maxInFlight  *int
	rotateAfter  *int
	drainTimeout *time.Duration
}

// parseQuotas parses a "tenant=epsilon,tenant=epsilon" list.
func parseQuotas(spec string) (map[int64]float64, error) {
	if spec == "" {
		return nil, nil
	}
	quotas := make(map[int64]float64)
	for _, field := range strings.Split(spec, ",") {
		tenant, quota, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("quota entry %q is not tenant=epsilon", field)
		}
		id, err := strconv.ParseInt(tenant, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("quota tenant %q: %w", tenant, err)
		}
		eps, err := strconv.ParseFloat(quota, 64)
		if err != nil {
			return nil, fmt.Errorf("quota for tenant %d: %w", id, err)
		}
		if _, dup := quotas[id]; dup {
			return nil, fmt.Errorf("tenant %d listed twice", id)
		}
		quotas[id] = eps
	}
	return quotas, nil
}

// runServe runs the continuous-operation mode: -keys is a comma-separated
// list of per-epoch key files, the first signal starts a graceful drain,
// the second aborts, and SIGHUP requests an epoch rotation.
func runServe(ctx context.Context, role, keysPath string, base deploy.ServerOptions, sf serveFlags) error {
	quotas, err := parseQuotas(*sf.tenantQuota)
	if err != nil {
		return err
	}
	opts := deploy.ServeOptions{
		ServerOptions: base,
		Tenants:       quotas,
		DefaultQuota:  *sf.defaultQuota,
		Delta:         *sf.budgetDelta,
		LedgerPath:    *sf.ledger,
		MaxInFlight:   *sf.maxInFlight,
		RotateAfter:   *sf.rotateAfter,
		DrainTimeout:  *sf.drainTimeout,
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	drainCh := make(chan struct{})
	rotateCh := make(chan struct{}, 1)
	opts.DrainCh = drainCh
	opts.RotateCh = rotateCh

	sig := make(chan os.Signal, 4)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sig)
	go func() {
		drained := false
		for {
			select {
			case <-ctx.Done():
				return
			case s := <-sig:
				switch {
				case s == syscall.SIGHUP:
					select {
					case rotateCh <- struct{}{}:
					default:
					}
				case !drained:
					fmt.Fprintln(os.Stderr, "server: draining (signal again to abort)")
					close(drainCh)
					drained = true
				default:
					fmt.Fprintln(os.Stderr, "server: aborting")
					cancel()
				}
			}
		}
	}()

	switch role {
	case "s1":
		files, err := loadEpochFiles[keystore.S1File](keysPath)
		if err != nil {
			return err
		}
		rep, err := deploy.ServeS1(ctx, files, opts)
		if err != nil {
			return err
		}
		printServeReport(rep)
		return nil
	case "s2":
		files, err := loadEpochFiles[keystore.S2File](keysPath)
		if err != nil {
			return err
		}
		rep, err := deploy.ServeS2(ctx, files, opts)
		if err != nil {
			return err
		}
		fmt.Printf("s2 drained after %d queries\n", len(rep.Results))
		return nil
	default:
		return fmt.Errorf("-role must be s1 or s2, got %q", role)
	}
}

// loadEpochFiles loads a comma-separated epoch key file list, in order.
func loadEpochFiles[T any](spec string) ([]*T, error) {
	var files []*T
	for _, path := range strings.Split(spec, ",") {
		file := new(T)
		if err := keystore.Load(strings.TrimSpace(path), file); err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	return files, nil
}

func printServeReport(rep *deploy.ServeReport) {
	fmt.Printf("s1 drained after %d queries, %d rotations, final epoch %d\n",
		len(rep.Results), rep.Rotations, rep.Epoch)
	decisions := make([]string, 0, len(rep.Admissions))
	for d := range rep.Admissions {
		decisions = append(decisions, d)
	}
	sort.Strings(decisions)
	for _, d := range decisions {
		fmt.Printf("  admissions %s: %d\n", d, rep.Admissions[d])
	}
	for _, spend := range rep.Tenants {
		fmt.Printf("  tenant %d: epsilon %.6g over %d queries (%d releases)\n",
			spend.Tenant, spend.Epsilon, spend.Queries, spend.Releases)
	}
	failed := 0
	for _, res := range rep.Results {
		if res.Err != nil && !errors.Is(res.Err, privconsensus.ErrQuorumNotMet) {
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("  %d of %d queries failed\n", failed, len(rep.Results))
	}
}
