package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("expected error for missing -keys")
	}
	if err := run([]string{"-keys", "x.json", "-role", "nope"}); err == nil {
		t.Error("expected error for unknown role")
	}
	if err := run([]string{"-keys", "missing.json", "-role", "s1"}); err == nil {
		t.Error("expected error for missing key file")
	}
	if err := run([]string{"-keys", "missing.json", "-role", "s2"}); err == nil {
		t.Error("expected error for missing key file")
	}
}
