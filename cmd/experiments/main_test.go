package main

import (
	"testing"

	"github.com/privconsensus/privconsensus/internal/experiments"
)

func TestParseUsers(t *testing.T) {
	got, err := parseUsers("10, 25,50")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 50 {
		t.Errorf("parseUsers = %v", got)
	}
	if _, err := parseUsers("10,x"); err == nil {
		t.Error("expected error for non-numeric")
	}
	if _, err := parseUsers("0"); err == nil {
		t.Error("expected error for zero users")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("expected usage error with no experiment id")
	}
	if err := run([]string{"bogus-id"}); err == nil {
		t.Error("expected error for unknown id")
	}
	if err := run([]string{"-users", "nope", "fig2"}); err == nil {
		t.Error("expected error for bad user list")
	}
}

func TestRunTinyTable3(t *testing.T) {
	err := run([]string{
		"-scale", "0.004", "-queries", "30", "-users", "4", "-epochs", "4", "table3",
	})
	if err != nil {
		t.Fatalf("tiny table3 run: %v", err)
	}
}

func TestPrintersDoNotPanic(t *testing.T) {
	res := &experiments.ProtocolBenchResult{
		Config: experiments.ProtocolBenchConfig{Instances: 1, Users: 2, Classes: 3},
		Steps: []experiments.StepRow{
			{Step: "threshold-checking(5)", AvgBytesPerParty: 10},
		},
	}
	printTable1(res)
	printTable2(res)
	printTable3([]experiments.Table3Cell{{Users: 10, Retention: 0.5, LabelAcc: 0.9}})
	printEpsMatched([]experiments.EpsMatchedCell{{Users: 10, Level: "x", Epsilon: 1}})
	printFigures([]experiments.Figure{{ID: "f", Series: []experiments.Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}}})
}

func TestWriteSVGs(t *testing.T) {
	dir := t.TempDir()
	figs := []experiments.Figure{{
		ID: "figX", Title: "t", XLabel: "x", YLabel: "y",
		Series: []experiments.Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}}
	if err := writeSVGs(dir, figs); err != nil {
		t.Fatalf("writeSVGs: %v", err)
	}
	bad := []experiments.Figure{{ID: "figY"}} // no series
	if err := writeSVGs(dir, bad); err == nil {
		t.Error("expected render error for empty figure")
	}
}
