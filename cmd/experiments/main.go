// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] <id>
//
// where <id> is one of: table1, table2, table3, fig2, fig3, fig4, fig5,
// fig6, all. Tables print in the paper's row format; figures print one CSV
// block per subfigure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/privconsensus/privconsensus/internal/experiments"
	"github.com/privconsensus/privconsensus/internal/ml"
	"github.com/privconsensus/privconsensus/internal/plot"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		full      = fs.Bool("full", false, "use paper-scale options (slow)")
		scale     = fs.Float64("scale", 0, "override dataset scale (0 = profile default)")
		queries   = fs.Int("queries", 0, "override aggregator pool size")
		users     = fs.String("users", "", "comma-separated user counts (e.g. 10,25,50,75,100)")
		reps      = fs.Int("reps", 0, "repetitions per cell")
		seed      = fs.Int64("seed", 1, "base RNG seed")
		epochs    = fs.Int("epochs", 0, "override training epochs")
		instances = fs.Int("instances", 0, "protocol instances for table1/table2")
		benchU    = fs.Int("bench-users", 10, "user count for table1/table2")
		svgDir    = fs.String("svg", "", "also write each figure as an SVG into this directory")
		dgkPool   = fs.Bool("dgkpool", false, "enable the DGK nonce pool for table1/table2")
		par       = fs.Int("parallelism", 0, "protocol worker bound for table1/table2 (0 = NumCPU, 1 = sequential)")
		argmax    = fs.String("argmax", "", "argmax strategy for table1/table2: tournament (default) or allpairs")
		benchJSON = fs.String("json", "", "write the machine-readable protocol benchmark to this path (table1/table2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: experiments [flags] <table1|table2|table3|fig2|fig3|fig4|fig5|fig6|all>")
	}
	id := fs.Arg(0)

	opts := experiments.DefaultOptions()
	if *full {
		opts = experiments.FullOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *queries > 0 {
		opts.Queries = *queries
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *epochs > 0 {
		opts.Train.Epochs = *epochs
	} else if opts.Train.Epochs == 0 {
		opts.Train = ml.DefaultTrainConfig()
	}
	opts.Seed = *seed
	if *users != "" {
		parsed, err := parseUsers(*users)
		if err != nil {
			return err
		}
		opts.Users = parsed
	}

	pb := experiments.DefaultProtocolBenchConfig()
	pb.Users = *benchU
	pb.Seed = *seed
	pb.UseDGKPool = *dgkPool
	pb.Parallelism = *par
	pb.ArgmaxStrategy = *argmax
	if *instances > 0 {
		pb.Instances = *instances
	}

	ids := []string{id}
	if id == "all" {
		ids = []string{"table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig3eps"}
	}
	for _, exp := range ids {
		if err := runOne(exp, opts, pb, *svgDir, *benchJSON); err != nil {
			return fmt.Errorf("%s: %w", exp, err)
		}
	}
	return nil
}

// parseUsers parses "10,25,50" into a slice.
func parseUsers(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid user count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// runOne dispatches a single experiment id.
func runOne(id string, opts experiments.Options, pb experiments.ProtocolBenchConfig, svgDir, benchJSON string) error {
	switch id {
	case "table1", "table2":
		res, err := experiments.ProtocolBench(pb)
		if err != nil {
			return err
		}
		if id == "table1" {
			printTable1(res)
		} else {
			printTable2(res)
		}
		if benchJSON != "" {
			// Re-run the workload under the all-pairs oracle so the record
			// carries both strategies' per-phase costs (skip when the
			// primary run already is all-pairs).
			var oracle *experiments.ProtocolBenchResult
			if pb.ResolvedArgmaxStrategy() != protocol.StrategyAllPairs {
				ocfg := pb
				ocfg.ArgmaxStrategy = protocol.StrategyAllPairs
				if oracle, err = experiments.ProtocolBench(ocfg); err != nil {
					return err
				}
			}
			if err := experiments.WriteBenchJSON(benchJSON, res, oracle); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", benchJSON)
		}
	case "table3":
		cells, err := experiments.Table3(opts)
		if err != nil {
			return err
		}
		printTable3(cells)
	case "fig3eps":
		cells, err := experiments.Fig3EpsilonMatched(opts)
		if err != nil {
			return err
		}
		printEpsMatched(cells)
	case "fig2", "fig3", "fig4", "fig5", "fig6":
		var figs []experiments.Figure
		var err error
		switch id {
		case "fig2":
			figs, err = experiments.Fig2(opts)
		case "fig3":
			figs, err = experiments.Fig3(opts)
		case "fig4":
			figs, err = experiments.Fig4(opts)
		case "fig5":
			figs, err = experiments.Fig5(opts)
		case "fig6":
			figs, err = experiments.Fig6(opts)
		}
		if err != nil {
			return err
		}
		printFigures(figs)
		if svgDir != "" {
			if err := writeSVGs(svgDir, figs); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
	return nil
}

// printTable1 renders the per-step running time (Table I).
func printTable1(res *experiments.ProtocolBenchResult) {
	fmt.Printf("TABLE I — COMPUTATIONAL COSTS (%d instances, %d users, %d classes)\n",
		res.Config.Instances, res.Config.Users, res.Config.Classes)
	fmt.Printf("%-28s %s\n", "Step", "Average Running Time")
	for _, s := range res.Steps {
		fmt.Printf("%-28s %v\n", s.Step, s.AvgTime)
	}
	fmt.Printf("%-28s %v\n", "Overall", res.Overall)
	fmt.Printf("(consensus reached on %d/%d instances)\n\n", res.Consensus, res.Config.Instances)
}

// printTable2 renders the per-step message sizes (Table II).
func printTable2(res *experiments.ProtocolBenchResult) {
	fmt.Printf("TABLE II — COMMUNICATION COSTS (%d instances, %d users, %d classes)\n",
		res.Config.Instances, res.Config.Users, res.Config.Classes)
	fmt.Printf("%-28s %s\n", "Step", "Message Size Per Party (bytes)")
	fmt.Printf("%-28s %d (user-to-server)\n", "secure-sum(2)", res.UserToServerBytes)
	for _, s := range res.Steps {
		fmt.Printf("%-28s %d (server-to-server)\n", s.Step, s.AvgBytesPerParty)
		if s.Step == "threshold-checking(5)" {
			fmt.Printf("%-28s %d (user-to-server)\n", "secure-sum(6)", res.UserToServerBytes2)
		}
	}
	fmt.Println()
}

// printTable3 renders retained proportion / label accuracy (Table III).
func printTable3(cells []experiments.Table3Cell) {
	fmt.Println("TABLE III — PROPORTION OF RETAINED SAMPLES / LABEL ACCURACY (SVHN-like)")
	fmt.Printf("%-12s %-16s %-16s %-16s\n", "No. of Users", "2-8", "3-7", "4-6")
	byUser := map[int]map[string]experiments.Table3Cell{}
	var order []int
	for _, c := range cells {
		if byUser[c.Users] == nil {
			byUser[c.Users] = map[string]experiments.Table3Cell{}
			order = append(order, c.Users)
		}
		byUser[c.Users][c.Division.String()] = c
	}
	for _, u := range order {
		row := byUser[u]
		fmt.Printf("%-12d", u)
		for _, div := range []string{"2-8", "3-7", "4-6"} {
			c := row[div]
			fmt.Printf(" %.3f/%.3f     ", c.Retention, c.LabelAcc)
		}
		fmt.Println()
	}
	fmt.Println()
}

// writeSVGs renders each figure to <dir>/<id>.svg.
func writeSVGs(dir string, figs []experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range figs {
		chart := plot.Chart{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
		for _, s := range f.Series {
			chart.Series = append(chart.Series, plot.Series{Name: s.Name, X: s.X, Y: s.Y})
		}
		svg, err := plot.RenderSVG(chart)
		if err != nil {
			return fmt.Errorf("render %s: %w", f.ID, err)
		}
		path := filepath.Join(dir, f.ID+".svg")
		if err := os.WriteFile(path, svg, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// printEpsMatched renders the epsilon-matched baseline ablation.
func printEpsMatched(cells []experiments.EpsMatchedCell) {
	fmt.Println("FIG 3 ABLATION — EPSILON-MATCHED BASELINE (SVHN-like)")
	fmt.Printf("%-12s %-10s %-10s %-10s %-14s %-14s %-14s %-14s\n",
		"level", "users", "epsilon", "base-sigma",
		"cons-label", "base-label", "cons-student", "base-student")
	for _, c := range cells {
		fmt.Printf("%-12s %-10d %-10.2f %-10.2f %-14.3f %-14.3f %-14.3f %-14.3f\n",
			c.Level, c.Users, c.Epsilon, c.BaselineSigma,
			c.ConsensusLabelAcc, c.BaselineLabelAcc,
			c.ConsensusStudentAcc, c.BaselineStudentAcc)
	}
	fmt.Println()
}

// printFigures renders each figure as a CSV block.
func printFigures(figs []experiments.Figure) {
	for _, f := range figs {
		fmt.Printf("# %s: %s (x=%s, y=%s)\n", f.ID, f.Title, f.XLabel, f.YLabel)
		for _, s := range f.Series {
			fmt.Printf("series,%s", s.Name)
			for i := range s.X {
				fmt.Printf(",%g:%.4f", s.X[i], s.Y[i])
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
