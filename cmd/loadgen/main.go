// Command loadgen drives the ingestion tier at scale: it simulates large
// user populations (10⁵–10⁶) submitting through a relay tree — or directly
// to the servers — against real ingestion sinks (deploy.RunIngest: the
// servers' accept/validate/collect path with the protocol run stopped at
// the quorum release), and records ingestion throughput, per-user ack
// percentiles and the quorum wait as results/BENCH_ingest.json.
//
// The simulated users share one cryptographically well-formed submission
// (re-tagged per user), so the harness measures the ingestion tier —
// transport, validation, pre-summing, batching — not 10⁵ Paillier
// encryptions. A separate small full-protocol parity run (-parity-users)
// proves tree and direct ingestion produce identical consensus outcomes.
//
// Usage:
//
//	loadgen [flags]
//
// Arrival schedules are open-loop: flood (all at once), poisson:RATE
// (RATE users/sec, exponential interarrivals), burst:N@INTERVAL (N users
// every INTERVAL, e.g. burst:500@100ms).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/privconsensus/privconsensus/internal/deploy"
	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/experiments"
	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// options carries the parsed harness configuration.
type options struct {
	users       int
	relays      int
	levels      int
	batch       int
	workers     int
	arrival     string
	instances   int
	classes     int
	bits        int
	deadline    time.Duration
	seed        int64
	out         string
	mode        string
	parityUsers int
	large       int
	packed      bool
	packedCmp   bool

	serveRate     float64
	serveQueries  int
	serveInflight int
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var o options
	fs.IntVar(&o.users, "users", 1000, "simulated user population")
	fs.IntVar(&o.relays, "relays", 2, "leaf relays in the ingestion tree")
	fs.IntVar(&o.levels, "levels", 2, "tree depth: 2 (leaves->servers) or 3 (leaves->mid relays->servers)")
	fs.IntVar(&o.batch, "batch", 64, "relay pre-sum batch size")
	fs.IntVar(&o.workers, "workers", 8, "concurrent upload workers")
	fs.StringVar(&o.arrival, "arrival", "flood", "arrival schedule: flood | poisson:RATE | burst:N@INTERVAL")
	fs.IntVar(&o.instances, "instances", 1, "query instances per submission")
	fs.IntVar(&o.classes, "classes", 4, "classes per vote vector")
	fs.IntVar(&o.bits, "bits", 256, "Paillier modulus bits for the measured run")
	fs.DurationVar(&o.deadline, "deadline", 2*time.Minute, "submission deadline safety cap on the sinks")
	fs.Int64Var(&o.seed, "seed", 1, "base RNG seed")
	fs.StringVar(&o.out, "out", "", "write the machine-readable record to this path (default: print)")
	fs.StringVar(&o.mode, "mode", "tree", "ingestion mode: tree | direct")
	fs.IntVar(&o.parityUsers, "parity-users", 20, "users for the tree-vs-direct full-protocol parity run (0 skips)")
	fs.IntVar(&o.large, "large", 0, "also measure at this population (e.g. 100000) into the large_* fields")
	fs.BoolVar(&o.packed, "packed", false, "slot-packed submissions for the measured run (and the parity run)")
	fs.BoolVar(&o.packedCmp, "packed-compare", false, "re-measure the same shape with packing on and record the packed_* comparison fields (requires -packed=false)")
	fs.Float64Var(&o.serveRate, "serve-rate", 0, "benchmark serve-mode admission instead of ingestion: open-loop query arrivals at this rate (queries/sec)")
	fs.IntVar(&o.serveQueries, "serve-queries", 100, "total queries for the -serve-rate run")
	fs.IntVar(&o.serveInflight, "serve-inflight", 4, "serve-mode admission window (in-flight query cap) for the -serve-rate run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.serveRate > 0 {
		if o.serveQueries < 2 || o.workers < 1 {
			return fmt.Errorf("-serve-queries must be >= 2 and -workers positive")
		}
		return runServeRate(context.Background(), o)
	}
	if o.mode != "tree" && o.mode != "direct" {
		return fmt.Errorf("unknown -mode %q", o.mode)
	}
	if o.levels != 2 && o.levels != 3 {
		return fmt.Errorf("-levels must be 2 or 3, got %d", o.levels)
	}
	if o.relays < 1 || o.users < 1 || o.workers < 1 {
		return fmt.Errorf("-users, -relays and -workers must be positive")
	}
	if _, err := parseArrival(o.arrival, 1, o.seed); err != nil {
		return err
	}
	if o.packed && o.packedCmp {
		return fmt.Errorf("-packed-compare re-measures with packing on; the primary run must use -packed=false")
	}

	ctx := context.Background()
	rec := experiments.IngestJSON{
		Mode: o.mode, Users: o.users, Relays: o.relays, Levels: o.levels,
		Batch: o.batch, Workers: o.workers, Arrival: o.arrival,
		PaillierBits: o.bits, Classes: o.classes, Instances: o.instances,
		Seed: o.seed, Packing: o.packed,
	}

	m, err := measure(ctx, o, o.users, o.packed)
	if err != nil {
		return err
	}
	rec.ElapsedNs = m.elapsed.Nanoseconds()
	rec.ThroughputUsersPerSec = float64(o.users) / m.elapsed.Seconds()
	rec.AckP50Ns = percentile(m.acks, 50).Nanoseconds()
	rec.AckP95Ns = percentile(m.acks, 95).Nanoseconds()
	rec.AckP99Ns = percentile(m.acks, 99).Nanoseconds()
	rec.QuorumWaitS1Ns = m.waitS1.Nanoseconds()
	rec.QuorumWaitS2Ns = m.waitS2.Nanoseconds()
	rec.Rehomes = m.rehomes
	rec.BytesPerUser = m.bytesPerUser
	fmt.Printf("measured %d users (%s, %s, packed=%v): %.0f users/sec, ack p99 %v, %dB/user, quorum wait s1=%v s2=%v\n",
		o.users, o.mode, o.arrival, o.packed, rec.ThroughputUsersPerSec,
		time.Duration(rec.AckP99Ns), rec.BytesPerUser, m.waitS1, m.waitS2)

	if o.packedCmp {
		pm, err := measure(ctx, o, o.users, true)
		if err != nil {
			return fmt.Errorf("packed compare run: %w", err)
		}
		elapsed := pm.elapsed.Seconds()
		rec.PackedThroughputUsersPerSec = float64(o.users) / elapsed
		rec.PackedAckP99Ns = percentile(pm.acks, 99).Nanoseconds()
		rec.PackedBytesPerUser = pm.bytesPerUser
		fmt.Printf("packed compare %d users: %.0f users/sec, ack p99 %v, %dB/user (unpacked %dB/user)\n",
			o.users, rec.PackedThroughputUsersPerSec,
			time.Duration(rec.PackedAckP99Ns), pm.bytesPerUser, m.bytesPerUser)
	}

	if o.parityUsers > 0 {
		ok, err := parityCheck(ctx, o)
		if err != nil {
			return fmt.Errorf("parity run: %w", err)
		}
		rec.ParityChecked, rec.ParityOK, rec.ParityUsers = true, ok, o.parityUsers
		if !ok {
			return fmt.Errorf("parity FAILED: relay-tree and direct ingestion produced different outcomes")
		}
		fmt.Printf("parity: tree and direct outcomes identical over %d users\n", o.parityUsers)
	}

	if o.large > 0 {
		lm, err := measure(ctx, o, o.large, o.packed)
		if err != nil {
			return fmt.Errorf("large run: %w", err)
		}
		rec.LargeUsers = o.large
		rec.LargeElapsedNs = lm.elapsed.Nanoseconds()
		rec.LargeThroughputUsersPerSec = float64(o.large) / lm.elapsed.Seconds()
		rec.LargeAckP99Ns = percentile(lm.acks, 99).Nanoseconds()
		rec.LargeQuorumWaitS1Ns = lm.waitS1.Nanoseconds()
		fmt.Printf("large run %d users: %.0f users/sec, ack p99 %v\n",
			o.large, rec.LargeThroughputUsersPerSec, time.Duration(rec.LargeAckP99Ns))
	}

	if o.out == "" {
		fmt.Printf("%+v\n", rec)
		return nil
	}
	if err := experiments.WriteIngestJSON(o.out, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", o.out)
	return nil
}

// harnessConfig builds the protocol configuration the ingestion sinks and
// relays validate against.
func harnessConfig(users, classes, bits int, packed bool) protocol.Config {
	cfg := protocol.DefaultConfig(users)
	cfg.Classes = classes
	cfg.PaillierBits = bits
	cfg.Kappa = 24
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.DGK = dgk.Params{NBits: 160, TBits: 32, U: 1009, L: 50}
	cfg.Packing = packed
	return cfg
}

// encodeUserHalf encodes one submission half in the configuration's wire
// format: a packed frame when slot packing is on, the legacy per-class
// frame otherwise.
func encodeUserHalf(cfg protocol.Config, user, instance int, h protocol.SubmissionHalf) (*transport.Message, error) {
	if cfg.Packing {
		return ingest.EncodePackedHalf(user, instance, cfg.Classes, cfg.PackedWidth(), h)
	}
	return ingest.EncodeHalf(user, instance, h)
}

// relayPacked returns the relay-side packed layout for the configuration,
// nil when packing is off.
func relayPacked(cfg protocol.Config) *ingest.PackedParams {
	if !cfg.Packing {
		return nil
	}
	return &ingest.PackedParams{
		Width:    cfg.PackedWidth(),
		PerVec:   cfg.PackedCiphertexts(),
		Headroom: cfg.PackedHeadroomBits(),
	}
}

// measurement is one ingestion run's raw numbers.
type measurement struct {
	elapsed        time.Duration
	acks           []time.Duration
	waitS1, waitS2 time.Duration
	rehomes        int
	bytesPerUser   int64
}

// measure runs one open-loop ingestion measurement at the given population.
func measure(ctx context.Context, o options, users int, packed bool) (*measurement, error) {
	cfg := harnessConfig(users, o.classes, o.bits, packed)
	keys, err := protocol.GenerateKeys(rand.New(rand.NewSource(o.seed)), cfg)
	if err != nil {
		return nil, err
	}
	_, _, pub, err := keystore.Split(cfg, keys)
	if err != nil {
		return nil, err
	}

	// One well-formed submission, re-tagged per user: the harness measures
	// the ingestion tier, not the users' encryption cost.
	votes := make([]*big.Int, cfg.Classes)
	for i := range votes {
		votes[i] = big.NewInt(0)
	}
	votes[0] = big.NewInt(protocol.VoteScale)
	tmpl, _, err := protocol.BuildSubmission(rand.New(rand.NewSource(o.seed+1)),
		rand.New(rand.NewSource(o.seed+2)), cfg, 0, votes, pub.PK1, pub.PK2)
	if err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Sinks: both servers' ingestion paths, releasing when every simulated
	// user is covered (deadline as a safety cap).
	sinkOpts := deploy.ServerOptions{
		ListenAddr: "127.0.0.1:0", Instances: o.instances,
		Quorum: float64(users), SubmitDeadline: o.deadline,
	}
	type sinkOut struct {
		rep *deploy.IngestReport
		err error
	}
	sinkDone := [2]chan sinkOut{make(chan sinkOut, 1), make(chan sinkOut, 1)}
	sinkAddr := [2]string{}
	for i, sk := range []struct {
		role string
		ring *big.Int
	}{{"s1", pub.PK2.N2}, {"s2", pub.PK1.N2}} {
		i, sk := i, sk
		opts := sinkOpts
		ready := make(chan string, 1)
		opts.Ready = ready
		go func() {
			rep, err := deploy.RunIngest(runCtx, sk.role, cfg, sk.ring, opts)
			sinkDone[i] <- sinkOut{rep, err}
		}()
		select {
		case sinkAddr[i] = <-ready:
		case out := <-sinkDone[i]:
			return nil, fmt.Errorf("%s sink: %v", sk.role, out.err)
		}
	}

	// Endpoint pairs per worker: in tree mode each worker leases one leaf
	// relay (sibling as failover); in direct mode the servers themselves.
	eps1 := make([][]string, o.workers)
	eps2 := make([][]string, o.workers)
	if o.mode == "direct" {
		for w := 0; w < o.workers; w++ {
			eps1[w] = []string{sinkAddr[0]}
			eps2[w] = []string{sinkAddr[1]}
		}
	} else {
		upS1, upS2 := sinkAddr[0], sinkAddr[1]
		if o.levels == 3 {
			// A middle tier of two combiner relays between leaves and
			// servers; leaves split between them.
			var mids [2][2]string
			for m := 0; m < 2; m++ {
				a1, a2, err := startHarnessRelay(runCtx, ingest.Options{
					UpstreamS1: sinkAddr[0], UpstreamS2: sinkAddr[1],
					RelayID: int64(101 + m), Users: users, Instances: o.instances,
					Classes: cfg.Classes, PK1: pub.PK1, PK2: pub.PK2,
					BatchSize: o.batch, Seed: o.seed + int64(100+m),
					Packed: relayPacked(cfg),
				})
				if err != nil {
					return nil, err
				}
				mids[m] = [2]string{a1, a2}
			}
			_ = upS1
			leafUp := func(r int) (string, string) { m := mids[r%2]; return m[0], m[1] }
			if eps1, eps2, err = startLeaves(runCtx, o, users, cfg, pub, leafUp); err != nil {
				return nil, err
			}
		} else {
			leafUp := func(int) (string, string) { return upS1, upS2 }
			if eps1, eps2, err = startLeaves(runCtx, o, users, cfg, pub, leafUp); err != nil {
				return nil, err
			}
		}
	}

	offsets, err := parseArrival(o.arrival, users, o.seed)
	if err != nil {
		return nil, err
	}

	// Workers: open-loop upload of the assigned users through persistent
	// uploaders, timing each user's send-to-durable-ack latency.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		acks    []time.Duration
		rehomes int
		firstMu sync.Mutex
		wErr    error
	)
	start := time.Now()
	for w := 0; w < o.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			up1 := &ingest.Uploader{Endpoints: eps1[w], Seed: o.seed + int64(w)}
			up2 := &ingest.Uploader{Endpoints: eps2[w], Seed: o.seed + int64(w) + 1}
			defer up1.Close()
			defer up2.Close()
			local := make([]time.Duration, 0, users/o.workers+1)
			for u := w; u < users; u += o.workers {
				if d := time.Until(start.Add(offsets[u])); d > 0 {
					time.Sleep(d)
				}
				t0 := time.Now()
				for i := 0; i < o.instances; i++ {
					f1, err := encodeUserHalf(cfg, u, i, tmpl.ToS1)
					if err == nil {
						err = up1.Send(runCtx, f1)
					}
					var f2 *transport.Message
					if err == nil {
						f2, err = encodeUserHalf(cfg, u, i, tmpl.ToS2)
					}
					if err == nil {
						err = up2.Send(runCtx, f2)
					}
					if err != nil {
						setErr(&firstMu, &wErr, fmt.Errorf("user %d: %w", u, err))
						return
					}
				}
				// A confirm can lose the race against the sink's release: the
				// final frames trigger the quorum release, the sink tears
				// down, and the in-flight done/ack dies with it. Release
				// already proves every frame was ingested, and the coverage
				// check below is authoritative, so a lost ack is a dropped
				// latency sample, not a failure.
				if up1.Confirm(runCtx, int64(u)) == nil && up2.Confirm(runCtx, int64(u)) == nil {
					local = append(local, time.Since(t0))
				}
			}
			mu.Lock()
			acks = append(acks, local...)
			rehomes += up1.Rehomes + up2.Rehomes
			mu.Unlock()
		}()
	}
	wg.Wait()
	if wErr != nil {
		return nil, wErr
	}
	elapsed := time.Since(start)

	m := &measurement{elapsed: elapsed, acks: acks, rehomes: rehomes,
		bytesPerUser: int64(protocol.SubmissionBytes(tmpl.ToS1) + protocol.SubmissionBytes(tmpl.ToS2))}
	for i := range sinkDone {
		out := <-sinkDone[i]
		if out.err != nil {
			return nil, fmt.Errorf("sink %d: %w", i, out.err)
		}
		for _, inst := range out.rep.Instances {
			if inst.Participants != users {
				return nil, fmt.Errorf("sink %d instance %d covered %d of %d users",
					i, inst.Instance, inst.Participants, users)
			}
		}
		if i == 0 {
			m.waitS1 = out.rep.Wait
		} else {
			m.waitS2 = out.rep.Wait
		}
	}
	return m, nil
}

// startLeaves launches the leaf relay tier and returns per-worker endpoint
// lists (primary leaf first, one sibling as failover).
func startLeaves(ctx context.Context, o options, users int, cfg protocol.Config,
	pub *keystore.PublicFile, upstream func(r int) (string, string)) (eps1, eps2 [][]string, err error) {
	leaf1 := make([]string, o.relays)
	leaf2 := make([]string, o.relays)
	for r := 0; r < o.relays; r++ {
		upS1, upS2 := upstream(r)
		a1, a2, err := startHarnessRelay(ctx, ingest.Options{
			UpstreamS1: upS1, UpstreamS2: upS2, RelayID: int64(r + 1),
			Users: users, Instances: o.instances, Classes: cfg.Classes,
			PK1: pub.PK1, PK2: pub.PK2, BatchSize: o.batch,
			Seed: o.seed + int64(r), Packed: relayPacked(cfg),
		})
		if err != nil {
			return nil, nil, err
		}
		leaf1[r], leaf2[r] = a1, a2
	}
	eps1 = make([][]string, o.workers)
	eps2 = make([][]string, o.workers)
	for w := 0; w < o.workers; w++ {
		r := w % o.relays
		sib := (r + 1) % o.relays
		eps1[w] = []string{leaf1[r], leaf1[sib]}
		eps2[w] = []string{leaf2[r], leaf2[sib]}
		if o.relays == 1 {
			eps1[w] = eps1[w][:1]
			eps2[w] = eps2[w][:1]
		}
	}
	return eps1, eps2, nil
}

// startHarnessRelay launches one relay on loopback and waits for both
// listeners.
func startHarnessRelay(ctx context.Context, opts ingest.Options) (s1Addr, s2Addr string, err error) {
	r1 := make(chan string, 1)
	r2 := make(chan string, 1)
	opts.ListenS1, opts.ListenS2 = "127.0.0.1:0", "127.0.0.1:0"
	opts.ReadyS1, opts.ReadyS2 = r1, r2
	errCh := make(chan error, 1)
	go func() { errCh <- ingest.Run(ctx, opts) }()
	select {
	case s1Addr = <-r1:
	case err := <-errCh:
		return "", "", fmt.Errorf("relay %d did not start: %v", opts.RelayID, err)
	case <-time.After(10 * time.Second):
		return "", "", fmt.Errorf("relay %d start timed out", opts.RelayID)
	}
	return s1Addr, <-r2, nil
}

// setErr records the first worker error.
func setErr(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	defer mu.Unlock()
	if *dst == nil {
		*dst = err
	}
}

// parseArrival builds per-user arrival offsets for an open-loop schedule.
func parseArrival(spec string, users int, seed int64) ([]time.Duration, error) {
	offsets := make([]time.Duration, users)
	switch {
	case spec == "flood":
		return offsets, nil
	case strings.HasPrefix(spec, "poisson:"):
		rate, err := strconv.ParseFloat(strings.TrimPrefix(spec, "poisson:"), 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("bad poisson rate in %q", spec)
		}
		rng := rand.New(rand.NewSource(seed + 7))
		t := 0.0
		for i := range offsets {
			t += rng.ExpFloat64() / rate
			offsets[i] = time.Duration(t * float64(time.Second))
		}
		return offsets, nil
	case strings.HasPrefix(spec, "burst:"):
		parts := strings.SplitN(strings.TrimPrefix(spec, "burst:"), "@", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("burst schedule %q, want burst:N@INTERVAL", spec)
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad burst size in %q", spec)
		}
		interval, err := time.ParseDuration(parts[1])
		if err != nil || interval <= 0 {
			return nil, fmt.Errorf("bad burst interval in %q", spec)
		}
		for i := range offsets {
			offsets[i] = time.Duration(i/n) * interval
		}
		return offsets, nil
	default:
		return nil, fmt.Errorf("unknown arrival schedule %q", spec)
	}
}

// percentile returns the p-th percentile (nearest-rank) of the samples.
func percentile(durs []time.Duration, p int) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}

// parityCheck runs the full consensus protocol twice over a small
// population — once with direct ingestion, once through a two-relay tree —
// with identical submissions and server seeds, and reports whether every
// instance's outcome matches. The relay pre-sum is homomorphic addition,
// which is associative and commutative, so the aggregates are byte-equal
// and the outcomes must be identical; this check keeps that invariant
// honest end to end.
func parityCheck(ctx context.Context, o options) (bool, error) {
	users := o.parityUsers
	cfg := harnessConfig(users, o.classes, o.bits, o.packed)
	cfg.ThresholdFrac = 0.5
	keys, err := protocol.GenerateKeys(rand.New(rand.NewSource(o.seed+11)), cfg)
	if err != nil {
		return false, err
	}
	s1File, s2File, pub, err := keystore.Split(cfg, keys)
	if err != nil {
		return false, err
	}

	runOnce := func(tree bool) (*deploy.Report, *deploy.Report, error) {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		base := deploy.ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: 1,
			MaxRetries: 2, Backoff: 10 * time.Millisecond, AttemptTimeout: 2 * time.Minute,
		}
		type repOut struct {
			rep *deploy.Report
			err error
		}
		s1Ready := make(chan string, 1)
		s1Done := make(chan repOut, 1)
		go func() {
			opts := base
			opts.Seed, opts.Ready = o.seed+21, s1Ready
			rep, err := deploy.RunS1Report(runCtx, s1File, opts)
			s1Done <- repOut{rep, err}
		}()
		s1Addr := <-s1Ready
		s2Ready := make(chan string, 1)
		s2Done := make(chan repOut, 1)
		go func() {
			opts := base
			opts.Seed, opts.Ready, opts.PeerAddr = o.seed+22, s2Ready, s1Addr
			rep, err := deploy.RunS2Report(runCtx, s2File, opts)
			s2Done <- repOut{rep, err}
		}()
		s2Addr := <-s2Ready

		ep1 := []string{s1Addr}
		ep2 := []string{s2Addr}
		if tree {
			a1, a2, err := startHarnessRelay(runCtx, ingest.Options{
				UpstreamS1: s1Addr, UpstreamS2: s2Addr, RelayID: 1,
				Users: users, Instances: 1, Classes: cfg.Classes,
				PK1: pub.PK1, PK2: pub.PK2, BatchSize: 4, Seed: o.seed + 31,
				Packed: relayPacked(cfg),
			})
			if err != nil {
				return nil, nil, err
			}
			b1, b2, err := startHarnessRelay(runCtx, ingest.Options{
				UpstreamS1: s1Addr, UpstreamS2: s2Addr, RelayID: 2,
				Users: users, Instances: 1, Classes: cfg.Classes,
				PK1: pub.PK1, PK2: pub.PK2, BatchSize: 4, Seed: o.seed + 32,
				Packed: relayPacked(cfg),
			})
			if err != nil {
				return nil, nil, err
			}
			ep1 = []string{a1, b1}
			ep2 = []string{a2, b2}
		}

		for u := 0; u < users; u++ {
			votes := make([]*big.Int, cfg.Classes)
			for i := range votes {
				votes[i] = big.NewInt(0)
			}
			votes[u%cfg.Classes] = big.NewInt(protocol.VoteScale)
			sub, _, err := protocol.BuildSubmission(rand.New(rand.NewSource(o.seed+int64(41+u))),
				rand.New(rand.NewSource(o.seed+int64(1041+u))), cfg, u, votes, pub.PK1, pub.PK2)
			if err != nil {
				return nil, nil, err
			}
			// Users alternate leaves in tree mode (index parity), exercising
			// cross-relay merging at the servers.
			e1, e2 := ep1, ep2
			if tree && u%2 == 1 && len(ep1) > 1 {
				e1 = []string{ep1[1], ep1[0]}
				e2 = []string{ep2[1], ep2[0]}
			}
			up1 := &ingest.Uploader{Endpoints: e1, Seed: o.seed + int64(u)}
			up2 := &ingest.Uploader{Endpoints: e2, Seed: o.seed + int64(u) + 1}
			f1, err := encodeUserHalf(cfg, u, 0, sub.ToS1)
			if err == nil {
				err = up1.Send(runCtx, f1)
			}
			if err == nil {
				err = up1.Confirm(runCtx, int64(u))
			}
			if err == nil {
				var f2 *transport.Message
				if f2, err = encodeUserHalf(cfg, u, 0, sub.ToS2); err == nil {
					if err = up2.Send(runCtx, f2); err == nil {
						err = up2.Confirm(runCtx, int64(u))
					}
				}
			}
			up1.Close()
			up2.Close()
			if err != nil {
				return nil, nil, fmt.Errorf("user %d upload: %w", u, err)
			}
		}

		r1 := <-s1Done
		r2 := <-s2Done
		if r1.err != nil {
			return nil, nil, r1.err
		}
		if r2.err != nil {
			return nil, nil, r2.err
		}
		return r1.rep, r2.rep, nil
	}

	d1, d2, err := runOnce(false)
	if err != nil {
		return false, fmt.Errorf("direct: %w", err)
	}
	t1, t2, err := runOnce(true)
	if err != nil {
		return false, fmt.Errorf("tree: %w", err)
	}
	for _, pair := range []struct{ a, b *deploy.Report }{{d1, t1}, {d2, t2}} {
		if len(pair.a.Results) != len(pair.b.Results) {
			return false, nil
		}
		for i := range pair.a.Results {
			if pair.a.Results[i].Err != nil || pair.b.Results[i].Err != nil {
				return false, fmt.Errorf("instance %d errored: direct %v, tree %v",
					i, pair.a.Results[i].Err, pair.b.Results[i].Err)
			}
			if pair.a.Results[i].Outcome != pair.b.Results[i].Outcome {
				return false, nil
			}
		}
	}
	return true, nil
}
