package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseArrival(t *testing.T) {
	flood, err := parseArrival("flood", 3, 1)
	if err != nil || len(flood) != 3 || flood[2] != 0 {
		t.Errorf("flood = %v, %v", flood, err)
	}
	pois, err := parseArrival("poisson:100", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pois); i++ {
		if pois[i] <= pois[i-1] {
			t.Errorf("poisson offsets not increasing: %v", pois)
		}
	}
	burst, err := parseArrival("burst:2@50ms", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if burst[0] != 0 || burst[1] != 0 || burst[2] != 50*time.Millisecond || burst[4] != 100*time.Millisecond {
		t.Errorf("burst offsets = %v", burst)
	}
	for _, bad := range []string{"poisson:", "poisson:-1", "burst:0@1s", "burst:5", "burst:5@junk", "drizzle"} {
		if _, err := parseArrival(bad, 2, 1); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	durs := []time.Duration{5, 1, 4, 2, 3} // sorted: 1..5
	cases := []struct {
		p    int
		want time.Duration
	}{{50, 3}, {95, 5}, {99, 5}, {100, 5}}
	for _, c := range cases {
		if got := percentile(durs, c.p); got != c.want {
			t.Errorf("p%d = %v, want %v", c.p, got, c.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty samples should yield 0")
	}
}

// TestLoadgenSmoke runs the harness end to end at a tiny scale: a 2-level
// tree, a burst schedule, a full-protocol parity check, and a written
// record with sane measurements.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen smoke is slow in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-users", "60", "-relays", "2", "-batch", "8", "-workers", "4",
		"-arrival", "burst:30@20ms", "-parity-users", "4", "-bits", "128",
		"-seed", "5", "-packed-compare", "-out", out,
	})
	if err != nil {
		t.Fatalf("loadgen run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if rec["schema"] != "privconsensus/ingest-bench/v2" {
		t.Errorf("schema = %v", rec["schema"])
	}
	if tput, _ := rec["throughput_users_per_sec"].(float64); tput <= 0 {
		t.Errorf("throughput = %v, want > 0", rec["throughput_users_per_sec"])
	}
	if ok, _ := rec["parity_ok"].(bool); !ok {
		t.Error("parity_ok = false: tree and direct ingestion diverged")
	}
	if n, _ := rec["rehomes"].(float64); n != 0 {
		t.Errorf("rehomes = %v in a failure-free run", rec["rehomes"])
	}
	// The primary run is unpacked; the compare arm appends the packed
	// re-measurement with a strictly smaller per-user upload.
	if packed, _ := rec["packing"].(bool); packed {
		t.Error("packing = true on the -packed-compare primary run")
	}
	ub, _ := rec["bytes_per_user"].(float64)
	pb, _ := rec["packed_bytes_per_user"].(float64)
	if ub <= 0 || pb <= 0 || pb >= ub {
		t.Errorf("bytes_per_user = %v, packed = %v; want 0 < packed < unpacked", ub, pb)
	}
}
