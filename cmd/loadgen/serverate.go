package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/privconsensus/privconsensus/internal/deploy"
	"github.com/privconsensus/privconsensus/internal/experiments"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

// serveCounts aggregates the open-loop run's admission outcomes.
type serveCounts struct {
	admitted, refused, drained, failed int
	admitWaits                         []time.Duration
}

// runServeRate benchmarks a serve-mode deployment under open-loop load:
// queries arrive at -serve-rate QPS regardless of completion, each worker
// streams its arrivals through admission control, and the record captures
// admitted/refused/drained counts plus client-observed admission latency
// percentiles. Refused arrivals (window full) are not retried — open-loop
// pressure is the point. After the last arrival the harness drains the
// pair and fires probe admissions to record the typed draining refusal.
func runServeRate(ctx context.Context, o options) error {
	users := o.classes // small fixed population: the bench measures admission, not encryption
	cfg := harnessConfig(users, o.classes, o.bits, o.packed)
	cfg.ThresholdFrac = 0.5
	var s1Files []*keystore.S1File
	var s2Files []*keystore.S2File
	var pubs []*keystore.PublicFile
	for e := 0; e < 2; e++ {
		keys, err := protocol.GenerateKeys(rand.New(rand.NewSource(o.seed+int64(51+e))), cfg)
		if err != nil {
			return err
		}
		s1, s2, pub, err := keystore.Split(cfg, keys)
		if err != nil {
			return err
		}
		s1Files, s2Files, pubs = append(s1Files, s1), append(s2Files, s2), append(pubs, pub)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	base := deploy.ServerOptions{
		ListenAddr:     "127.0.0.1:0",
		Seed:           o.seed + 61,
		MaxRetries:     2,
		Backoff:        10 * time.Millisecond,
		AttemptTimeout: o.deadline,
		Quorum:         float64(users),
		SubmitDeadline: o.deadline,
		LogLevel:       "warn",
	}
	drainCh := make(chan struct{})
	type s1Out struct {
		rep *deploy.ServeReport
		err error
	}
	s1Ready := make(chan string, 1)
	s1Done := make(chan s1Out, 1)
	go func() {
		opts := base
		opts.Ready = s1Ready
		rep, err := deploy.ServeS1(runCtx, s1Files, deploy.ServeOptions{
			ServerOptions: opts,
			MaxInFlight:   o.serveInflight,
			RotateAfter:   o.serveQueries / 2,
			DrainCh:       drainCh,
			DrainTimeout:  o.deadline,
		})
		s1Done <- s1Out{rep, err}
	}()
	s1Addr := <-s1Ready
	s2Ready := make(chan string, 1)
	s2Done := make(chan error, 1)
	go func() {
		opts := base
		opts.Seed, opts.PeerAddr, opts.Ready = o.seed+62, s1Addr, s2Ready
		_, err := deploy.ServeS2(runCtx, s2Files, deploy.ServeOptions{
			ServerOptions: opts, DrainTimeout: o.deadline,
		})
		s2Done <- err
	}()
	s2Addr := <-s2Ready

	newClient := func(tenant int64) (*deploy.ServeClient, error) {
		return deploy.NewServeClient(pubs, deploy.ServeClientOptions{
			Tenant: tenant, S1Addr: s1Addr, S2Addr: s2Addr,
			Seed: o.seed + 70 + tenant, MaxRetries: 2,
			Backoff: 10 * time.Millisecond, AttemptTimeout: o.deadline,
			LogLevel: "warn",
		})
	}

	// Open-loop arrivals: exponential interarrivals at the requested rate,
	// queries handed to whichever worker owns the slot.
	offsets := make([]time.Duration, o.serveQueries)
	arrng := rand.New(rand.NewSource(o.seed + 67))
	at := 0.0
	for i := range offsets {
		at += arrng.ExpFloat64() / o.serveRate
		offsets[i] = time.Duration(at * float64(time.Second))
	}

	votes := make([][]float64, users)
	for u := range votes {
		v := make([]float64, cfg.Classes)
		v[1] = 1
		votes[u] = v
	}

	var (
		mu     sync.Mutex
		counts serveCounts
		wg     sync.WaitGroup
	)
	classify := func(res *deploy.ServeResult, err error) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			counts.admitted++
			counts.admitWaits = append(counts.admitWaits, res.AdmitWait)
		case errors.Is(err, deploy.ErrOverloaded):
			counts.refused++
		case errors.Is(err, deploy.ErrDraining):
			counts.drained++
		default:
			counts.failed++
		}
	}
	start := time.Now()
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := newClient(int64(w + 1))
			if err != nil {
				mu.Lock()
				counts.failed += (o.serveQueries - w + o.workers - 1) / o.workers
				mu.Unlock()
				return
			}
			for q := w; q < o.serveQueries; q += o.workers {
				if d := time.Until(start.Add(offsets[q])); d > 0 {
					time.Sleep(d)
				}
				res, err := client.Do(runCtx, votes)
				classify(res, err)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Exercise the drain path: stop admitting, then probe — the typed
	// refusal (or the pair already gone) is the drained outcome.
	close(drainCh)
	if probe, err := newClient(99); err == nil {
		if _, err := probe.Do(runCtx, votes); errors.Is(err, deploy.ErrDraining) || err != nil {
			mu.Lock()
			counts.drained++
			mu.Unlock()
		}
	}
	r1 := <-s1Done
	if r1.err != nil {
		return fmt.Errorf("serve s1: %w", r1.err)
	}
	if err := <-s2Done; err != nil {
		return fmt.Errorf("serve s2: %w", err)
	}

	rec := experiments.IngestJSON{
		Mode: "serve", Users: users, Workers: o.workers,
		Arrival:      fmt.Sprintf("poisson:%g", o.serveRate),
		PaillierBits: o.bits, Classes: o.classes, Instances: 1,
		Seed: o.seed, Packing: o.packed,

		ServeQueries:       o.serveQueries,
		ServeRateQPS:       o.serveRate,
		ServeAdmitted:      counts.admitted,
		ServeRefused:       counts.refused,
		ServeDrained:       counts.drained,
		ServeFailed:        counts.failed,
		ServeRotations:     r1.rep.Rotations,
		ServeElapsedNs:     elapsed.Nanoseconds(),
		ServeThroughputQPS: float64(counts.admitted) / elapsed.Seconds(),
		ServeAdmitP50Ns:    percentile(counts.admitWaits, 50).Nanoseconds(),
		ServeAdmitP95Ns:    percentile(counts.admitWaits, 95).Nanoseconds(),
		ServeAdmitP99Ns:    percentile(counts.admitWaits, 99).Nanoseconds(),
	}
	fmt.Printf("serve %d queries at %g qps (%d workers): %d admitted, %d refused, %d drained, %d failed, %d rotations\n",
		o.serveQueries, o.serveRate, o.workers,
		counts.admitted, counts.refused, counts.drained, counts.failed, r1.rep.Rotations)
	fmt.Printf("  completed %.1f qps, admission p50 %v p95 %v p99 %v\n",
		rec.ServeThroughputQPS, time.Duration(rec.ServeAdmitP50Ns),
		time.Duration(rec.ServeAdmitP95Ns), time.Duration(rec.ServeAdmitP99Ns))

	if o.out == "" {
		fmt.Printf("%+v\n", rec)
		return nil
	}
	if err := experiments.WriteIngestJSON(o.out, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", o.out)
	return nil
}
