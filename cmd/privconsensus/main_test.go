package main

import "testing"

func TestRunSmallPipeline(t *testing.T) {
	err := run([]string{
		"-dataset", "mnist", "-scale", "0.005", "-users", "5",
		"-queries", "30", "-sigma1", "1", "-sigma2", "1",
	})
	if err != nil {
		t.Fatalf("small pipeline run: %v", err)
	}
}

func TestRunBaselineAndCelebA(t *testing.T) {
	if err := run([]string{
		"-dataset", "svhn", "-scale", "0.005", "-users", "5",
		"-queries", "30", "-baseline",
	}); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if err := run([]string{
		"-dataset", "celeba", "-scale", "0.001", "-users", "4",
		"-queries", "10", "-division", "2-8",
	}); err != nil {
		t.Fatalf("celeba run: %v", err)
	}
}

func TestRunRejectsBadDataset(t *testing.T) {
	if err := run([]string{"-dataset", "imagenet", "-scale", "0.01", "-users", "3", "-queries", "10"}); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestRunCryptoSample(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto sample is slow in -short mode")
	}
	if err := runCryptoSample(1, 4, 0.5, 0.5, 0.5, 7, ""); err != nil {
		t.Fatalf("crypto sample: %v", err)
	}
}
