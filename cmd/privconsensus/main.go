// Command privconsensus runs the full private-consensus PATE pipeline end
// to end on a synthetic dataset and reports accuracy, retention and privacy
// spend. With -crypto it additionally runs the cryptographic protocol
// (Paillier + DGK + blind-and-permute) on a sample of query instances and
// verifies the decisions against the plaintext path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	privconsensus "github.com/privconsensus/privconsensus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "privconsensus:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("privconsensus", flag.ContinueOnError)
	var (
		datasetName = fs.String("dataset", "mnist", "dataset: mnist, svhn or celeba")
		scale       = fs.Float64("scale", 0.05, "dataset scale in (0, 1]")
		users       = fs.Int("users", 25, "number of users (teachers)")
		division    = fs.String("division", "even", "data distribution: even, 2-8, 3-7, 4-6")
		voteType    = fs.String("votes", "one-hot", "vote type: one-hot or softmax")
		queries     = fs.Int("queries", 500, "aggregator query pool size")
		baseline    = fs.Bool("baseline", false, "run the noisy-argmax baseline instead of consensus")
		threshold   = fs.Float64("threshold", 0.6, "consensus threshold as fraction of users")
		sigma1      = fs.Float64("sigma1", 4, "SVT noise deviation (votes)")
		sigma2      = fs.Float64("sigma2", 4, "report-noisy-max deviation (votes)")
		seed        = fs.Int64("seed", 1, "RNG seed")
		crypto      = fs.Int("crypto", 0, "also run the cryptographic protocol on N sample instances")
		acctPath    = fs.String("accountant-path", "", "persist the crypto sample's privacy accountant to this file; reloaded on the next run so the (eps, delta) budget accumulates across restarts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := privconsensus.PATEConfig{
		Dataset:       *datasetName,
		Scale:         *scale,
		Users:         *users,
		Division:      *division,
		VoteType:      *voteType,
		Queries:       *queries,
		UseConsensus:  !*baseline,
		ThresholdFrac: *threshold,
		Sigma1:        *sigma1,
		Sigma2:        *sigma2,
		Seed:          *seed,
	}
	start := time.Now()
	res, err := privconsensus.RunPATE(cfg)
	if err != nil {
		return err
	}
	method := "private consensus"
	if *baseline {
		method = "noisy-argmax baseline"
	}
	fmt.Printf("pipeline: %s on %s-like data, %d users, %s distribution, %s votes\n",
		method, *datasetName, *users, *division, *voteType)
	fmt.Printf("  mean user accuracy:   %.4f\n", res.UserAccMean)
	if res.MajorityAcc > 0 || res.MinorityAcc > 0 {
		fmt.Printf("  majority / minority:  %.4f / %.4f\n", res.MajorityAcc, res.MinorityAcc)
	}
	fmt.Printf("  label accuracy:       %.4f\n", res.LabelAccuracy)
	fmt.Printf("  retention:            %.4f (%d labeled pairs)\n", res.Retention, res.Retained)
	fmt.Printf("  aggregator accuracy:  %.4f\n", res.StudentAccuracy)
	fmt.Printf("  privacy spend:        eps = %.3f at delta = 1e-6\n", res.Epsilon)
	fmt.Printf("  wall time:            %v\n", time.Since(start).Round(time.Millisecond))

	if *crypto > 0 {
		if err := runCryptoSample(*crypto, *users, *threshold, *sigma1, *sigma2, *seed, *acctPath); err != nil {
			return fmt.Errorf("crypto sample: %w", err)
		}
	}
	return nil
}

// runCryptoSample runs the real two-server protocol on synthetic one-hot
// votes to demonstrate the cryptographic path.
func runCryptoSample(instances, users int, threshold, sigma1, sigma2 float64, seed int64, acctPath string) error {
	cfg := privconsensus.DefaultConfig(users)
	cfg.ThresholdFrac = threshold
	cfg.Sigma1, cfg.Sigma2 = sigma1, sigma2
	cfg.Seed = seed
	cfg.AccountantPath = acctPath
	engine, err := privconsensus.NewEngine(cfg)
	if err != nil {
		return err
	}
	ctx := context.Background()
	fmt.Printf("\ncryptographic protocol sample (%d instances, %d users, 10 classes):\n", instances, users)
	batch := make([][][]float64, instances)
	for i := range batch {
		votes := make([][]float64, users)
		winning := i % cfg.Classes
		for u := range votes {
			v := make([]float64, cfg.Classes)
			if u%5 == 4 { // one dissenter in five
				v[(winning+1)%cfg.Classes] = 1
			} else {
				v[winning] = 1
			}
			votes[u] = v
		}
		batch[i] = votes
	}
	start := time.Now()
	res, err := engine.LabelBatch(ctx, batch)
	if err != nil {
		return err
	}
	for i, out := range res.Outcomes {
		fmt.Printf("  instance %d: consensus=%v label=%d\n", i, out.Consensus, out.Label)
	}
	scope := "this run"
	if acctPath != "" {
		scope = "cumulative at " + acctPath
	}
	fmt.Printf("  crypto privacy spend: eps = %.3f at delta = 1e-6 (%s)\n", res.Epsilon, scope)
	fmt.Printf("  crypto wall time:     %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
