package main

import "testing"

func TestParseVotes(t *testing.T) {
	votes, err := parseVotes("2, 0,3", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != 3 {
		t.Fatalf("expected 3 instances, got %d", len(votes))
	}
	if votes[0][2] != 1 || votes[1][0] != 1 || votes[2][3] != 1 {
		t.Errorf("one-hot positions wrong: %v", votes)
	}
	for _, v := range votes {
		var sum float64
		for _, x := range v {
			sum += x
		}
		if sum != 1 {
			t.Errorf("vote not one-hot: %v", v)
		}
	}
	if _, err := parseVotes("4", 4); err == nil {
		t.Error("expected error for out-of-range class")
	}
	if _, err := parseVotes("abc", 4); err == nil {
		t.Error("expected error for non-numeric class")
	}
	if _, err := parseVotes("-1", 4); err == nil {
		t.Error("expected error for negative class")
	}
}

func TestRunRejectsMissingFlags(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("expected usage error")
	}
	if err := run([]string{"-keys", "nonexistent.json", "-user", "0", "-s1", "a", "-s2", "b", "-votes", "1"}); err == nil {
		t.Error("expected error for missing key file")
	}
}

func TestParseProbs(t *testing.T) {
	votes, err := parseProbs("0.7:0.2:0.1;0.1:0.8:0.1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != 2 || votes[0][0] != 0.7 || votes[1][1] != 0.8 {
		t.Errorf("parseProbs = %v", votes)
	}
	if _, err := parseProbs("0.5:0.5", 3); err == nil {
		t.Error("expected class-count error")
	}
	if _, err := parseProbs("0.5:0.9:0.1", 3); err == nil {
		t.Error("expected sum error")
	}
	if _, err := parseProbs("x:0.5:0.5", 3); err == nil {
		t.Error("expected parse error")
	}
	if _, err := parseProbs("-0.1:0.6:0.5", 3); err == nil {
		t.Error("expected range error")
	}
}

func TestRunRejectsBothVoteFlags(t *testing.T) {
	if err := run([]string{"-keys", "k.json", "-user", "0", "-s1", "a", "-s2", "b",
		"-votes", "1", "-probs", "0.5:0.5"}); err == nil {
		t.Error("expected error for both -votes and -probs")
	}
}
