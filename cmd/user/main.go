// Command user submits one user's encrypted votes to both protocol
// servers. Votes are given as a comma-separated list of winning class
// indices, one per query instance (one-hot voting):
//
//	user -keys keys/public.json -user 3 -s1 host1:9001 -s2 host2:9002 -votes 2,2,7
//
// Against a serve-mode deployment (-serve), the command acts as a tenant
// streaming whole queries through admission control: -keys takes a
// comma-separated list of per-epoch public key files and each -votes
// entry is the unanimous one-hot label for one admitted query:
//
//	user -serve -keys keys/public.e0.json,keys/public.e1.json \
//	    -tenant 1 -s1 host1:9001 -s2 host2:9002 -votes 2,2,7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/privconsensus/privconsensus/internal/deploy"
	"github.com/privconsensus/privconsensus/internal/keystore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "user:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("user", flag.ContinueOnError)
	var (
		keysPath = fs.String("keys", "", "path to public.json")
		userIdx  = fs.Int("user", -1, "this user's index")
		s1Addr   = fs.String("s1", "", "S1 address")
		s2Addr   = fs.String("s2", "", "S2 address")
		votesArg = fs.String("votes", "", "comma-separated winning class per instance, e.g. 2,2,7")
		probsArg = fs.String("probs", "", "softmax votes: semicolon-separated probability vectors, e.g. 0.7:0.2:0.1;0.1:0.8:0.1")
		timeout  = fs.Duration("timeout", time.Minute, "submission deadline")
		seed     = fs.Int64("seed", 0, "deterministic seed (0 = crypto/rand)")
		retries  = fs.Int("max-retries", 0, "upload retry budget on transient I/O failures (0 = legacy fire-and-forget upload)")
		backoff  = fs.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per retry)")
		faults   = fs.String("fault-spec", "", "inject deterministic connection faults (testing only)")
		journal  = fs.String("journal", "", "append a hash-chained JSONL event journal at this path and join the servers' cross-process trace (see cmd/trace)")
		packed   = fs.String("packed", "", "slot-packed submissions: on, off, or empty for the key file's setting (must match the servers)")
		logLevel = fs.String("log-level", "", "log threshold: debug, info (default), warn or silent")
		serve    = fs.Bool("serve", false, "submit queries to a serve-mode deployment: -keys becomes a comma-separated per-epoch list, each -votes entry is one query")
		tenant   = fs.Int64("tenant", 0, "tenant ID for serve-mode admission (ε quotas are per tenant)")
		attempt  = fs.Duration("attempt-timeout", 30*time.Second, "per-phase deadline in serve mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serve {
		return runServeClient(*keysPath, *tenant, *s1Addr, *s2Addr, *votesArg, serveClientConfig{
			timeout: *timeout, seed: *seed, retries: *retries, backoff: *backoff,
			attemptTimeout: *attempt, faults: *faults, packed: *packed, logLevel: *logLevel,
		})
	}
	if *keysPath == "" || *userIdx < 0 || *s1Addr == "" || *s2Addr == "" {
		return fmt.Errorf("usage: user -keys public.json -user N -s1 addr -s2 addr (-votes 2,2,7 | -probs 0.7:0.2:0.1)")
	}
	if (*votesArg == "") == (*probsArg == "") {
		return fmt.Errorf("exactly one of -votes or -probs is required")
	}

	var pub keystore.PublicFile
	if err := keystore.Load(*keysPath, &pub); err != nil {
		return err
	}
	if err := pub.Validate(); err != nil {
		return err
	}

	var votes [][]float64
	var err error
	if *votesArg != "" {
		votes, err = parseVotes(*votesArg, pub.Config.Classes)
	} else {
		votes, err = parseProbs(*probsArg, pub.Config.Classes)
	}
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := deploy.SubmitVotes(ctx, &pub, deploy.UserOptions{
		User: *userIdx, S1Addr: *s1Addr, S2Addr: *s2Addr, Seed: *seed,
		MaxRetries: *retries, Backoff: *backoff, FaultSpec: *faults,
		JournalPath: *journal, LogLevel: *logLevel, Packing: *packed,
		Logf: deploy.DefaultLogger(fmt.Sprintf("[user%d] ", *userIdx)),
	}, votes); err != nil {
		return err
	}
	fmt.Printf("user %d submitted %d instances\n", *userIdx, len(votes))
	return nil
}

// parseProbs turns "0.7:0.2:0.1;0.1:0.8:0.1" into softmax vote vectors.
func parseProbs(s string, classes int) ([][]float64, error) {
	instances := strings.Split(s, ";")
	out := make([][]float64, 0, len(instances))
	for i, inst := range instances {
		parts := strings.Split(inst, ":")
		if len(parts) != classes {
			return nil, fmt.Errorf("instance %d: %d probabilities, want %d", i, len(parts), classes)
		}
		v := make([]float64, classes)
		var sum float64
		for c, p := range parts {
			x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil || x < 0 || x > 1 {
				return nil, fmt.Errorf("instance %d class %d: invalid probability %q", i, c, p)
			}
			v[c] = x
			sum += x
		}
		if sum < 0.99 || sum > 1.01 {
			return nil, fmt.Errorf("instance %d: probabilities sum to %g, want ~1", i, sum)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseVotes turns "2,2,7" into one-hot vote vectors.
func parseVotes(s string, classes int) ([][]float64, error) {
	parts := strings.Split(s, ",")
	out := make([][]float64, 0, len(parts))
	for i, p := range parts {
		label, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || label < 0 || label >= classes {
			return nil, fmt.Errorf("instance %d: invalid class %q (want 0..%d)", i, p, classes-1)
		}
		v := make([]float64, classes)
		v[label] = 1
		out = append(out, v)
	}
	return out, nil
}
