package main

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/privconsensus/privconsensus/internal/deploy"
	"github.com/privconsensus/privconsensus/internal/keystore"
)

// serveClientConfig carries the tuning flags into the serve-client run.
type serveClientConfig struct {
	timeout        time.Duration
	seed           int64
	retries        int
	backoff        time.Duration
	attemptTimeout time.Duration
	faults         string
	packed         string
	logLevel       string
}

// runServeClient streams one query per -votes entry through a serve-mode
// deployment's admission control, printing each query's outcome. The
// process exit distinguishes protocol failures from typed refusals.
func runServeClient(keysPath string, tenant int64, s1Addr, s2Addr, votesArg string, cc serveClientConfig) error {
	if keysPath == "" || s1Addr == "" || s2Addr == "" || votesArg == "" {
		return fmt.Errorf("usage: user -serve -keys public.e0.json,... -tenant N -s1 addr -s2 addr -votes 2,2,7")
	}
	var pubs []*keystore.PublicFile
	for _, path := range strings.Split(keysPath, ",") {
		var pub keystore.PublicFile
		if err := keystore.Load(strings.TrimSpace(path), &pub); err != nil {
			return err
		}
		pubs = append(pubs, &pub)
	}
	cfg := pubs[0].Config
	labels, err := parseVotes(votesArg, cfg.Classes)
	if err != nil {
		return err
	}

	client, err := deploy.NewServeClient(pubs, deploy.ServeClientOptions{
		Tenant: tenant, S1Addr: s1Addr, S2Addr: s2Addr, Seed: cc.seed,
		MaxRetries: cc.retries, Backoff: cc.backoff, AttemptTimeout: cc.attemptTimeout,
		FaultSpec: cc.faults, Packing: cc.packed, LogLevel: cc.logLevel,
		Logf: deploy.DefaultLogger(fmt.Sprintf("[tenant%d] ", tenant)),
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cc.timeout)
	defer cancel()
	failures := 0
	for i, label := range labels {
		votes := make([][]float64, cfg.Users)
		for u := range votes {
			votes[u] = label
		}
		res, err := client.Do(ctx, votes)
		switch {
		case errors.Is(err, deploy.ErrBudgetExhausted):
			return fmt.Errorf("query %d refused: %w", i, err)
		case errors.Is(err, deploy.ErrDraining), errors.Is(err, deploy.ErrOverloaded):
			return fmt.Errorf("query %d refused: %w", i, err)
		case err != nil:
			fmt.Printf("query %d: FAILED: %v\n", i, err)
			failures++
		case res.Consensus:
			fmt.Printf("query %d: label %d (qid %d, epoch %d, %d attempts)\n", i, res.Label, res.QID, res.Epoch, res.Attempts)
		default:
			fmt.Printf("query %d: no consensus (qid %d, epoch %d)\n", i, res.QID, res.Epoch)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d queries failed", failures, len(labels))
	}
	return nil
}
