// Command keygen acts as the deployment's trusted dealer: it generates all
// protocol key material once and writes three files — s1.json and s2.json
// (each server's private view, mode 0600) and public.json (the bundle users
// need). The protocol configuration is embedded in every file so all
// parties agree on it.
//
// Usage:
//
//	keygen -out ./keys -users 10 -classes 10 -threshold 0.6 -sigma1 4 -sigma2 2
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "keygen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	var (
		outDir    = fs.String("out", ".", "output directory for key files")
		users     = fs.Int("users", 10, "number of users")
		classes   = fs.Int("classes", 10, "number of classes")
		threshold = fs.Float64("threshold", 0.6, "consensus threshold fraction")
		sigma1    = fs.Float64("sigma1", 4, "SVT noise deviation (votes)")
		sigma2    = fs.Float64("sigma2", 2, "report-noisy-max deviation (votes)")
		paillier  = fs.Int("paillier-bits", 64, "Paillier modulus bits (paper: 64; production: >= 2048)")
		dgkBits   = fs.Int("dgk-bits", 192, "DGK modulus bits (production: >= 1024)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := protocol.DefaultConfig(*users)
	cfg.Classes = *classes
	cfg.ThresholdFrac = *threshold
	cfg.Sigma1, cfg.Sigma2 = *sigma1, *sigma2
	cfg.PaillierBits = *paillier
	cfg.DGK = dgk.Params{NBits: *dgkBits, TBits: 40, U: 1009, L: 56}
	if err := cfg.Validate(); err != nil {
		return err
	}

	fmt.Printf("generating keys (%d-bit Paillier, %d-bit DGK)...\n", *paillier, *dgkBits)
	keys, err := protocol.GenerateKeys(rand.Reader, cfg)
	if err != nil {
		return err
	}
	s1, s2, pub, err := keystore.Split(cfg, keys)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name string
		v    any
		mode os.FileMode
	}{
		{"s1.json", s1, 0o600},
		{"s2.json", s2, 0o600},
		{"public.json", pub, 0o644},
	}
	for _, f := range files {
		path := filepath.Join(*outDir, f.name)
		if err := keystore.Save(path, f.v, f.mode); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Println("distribute s1.json to server S1, s2.json to server S2, public.json to every user")
	return nil
}
