package main

import (
	"path/filepath"
	"testing"

	"github.com/privconsensus/privconsensus/internal/keystore"
)

func TestRunWritesAllFiles(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir, "-users", "2", "-classes", "3",
		"-paillier-bits", "64", "-dgk-bits", "160",
	})
	if err != nil {
		t.Fatalf("keygen run: %v", err)
	}
	var s1 keystore.S1File
	if err := keystore.Load(filepath.Join(dir, "s1.json"), &s1); err != nil {
		t.Fatalf("load s1: %v", err)
	}
	if _, err := s1.KeysS1(); err != nil {
		t.Errorf("s1 keys unusable: %v", err)
	}
	var s2 keystore.S2File
	if err := keystore.Load(filepath.Join(dir, "s2.json"), &s2); err != nil {
		t.Fatalf("load s2: %v", err)
	}
	if _, err := s2.KeysS2(); err != nil {
		t.Errorf("s2 keys unusable: %v", err)
	}
	var pub keystore.PublicFile
	if err := keystore.Load(filepath.Join(dir, "public.json"), &pub); err != nil {
		t.Fatalf("load public: %v", err)
	}
	if err := pub.Validate(); err != nil {
		t.Errorf("public bundle invalid: %v", err)
	}
	if pub.Config.Users != 2 || pub.Config.Classes != 3 {
		t.Errorf("config not embedded: %+v", pub.Config)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-users", "0"}); err == nil {
		t.Error("expected error for zero users")
	}
	if err := run([]string{"-threshold", "3"}); err == nil {
		t.Error("expected error for threshold > 1")
	}
}
