package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/privconsensus/privconsensus/internal/obs"
)

// writeTestJournal builds a journal with one completed query plus a retry
// annotation, as role under dir, stamped with trace.
func writeTestJournal(t *testing.T, dir, role, trace string) string {
	t.Helper()
	path := filepath.Join(dir, role+".jsonl")
	j, err := obs.OpenJournal(path, obs.JournalOptions{Role: role})
	if err != nil {
		t.Fatal(err)
	}
	if trace != "" {
		if err := j.BeginTrace(trace); err != nil {
			t.Fatal(err)
		}
	}
	tr := obs.NewTracer(role + "-q0")
	tr.StartPhase("secure-sum(2)")
	tr.EndPhase("secure-sum(2)", nil)
	tr.StartPhase("argmax(4)")
	tr.EndPhase("argmax(4)", nil)
	tr.SetPhaseIO("secure-sum(2)", 120, 80, 2, 2, 1)
	tr.SetPhaseIO("argmax(4)", 400, 300, 6, 6, 3)
	tr.Finish("consensus label=2", nil)
	if err := j.AppendTrace(0, 1, tr.Trace()); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(obs.Event{Type: obs.EventRetry, Instance: -1, Attempt: 1, Note: "reconnect"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunMerge merges two server journals into one per-query timeline.
func TestRunMerge(t *testing.T) {
	dir := t.TempDir()
	const trace = "t-00000000000000aa"
	s1 := writeTestJournal(t, dir, "s1", trace)
	s2 := writeTestJournal(t, dir, "s2", trace)

	var buf bytes.Buffer
	if err := run([]string{s1, s2}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if c := strings.Count(out, "== trace "); c != 1 {
		t.Fatalf("%d trace headers, want 1 merged timeline:\n%s", c, out)
	}
	for _, want := range []string{
		"== trace " + trace,
		"s1, s2",        // both roles in the header
		"-- instance 0", // the instance section
		"secure-sum(2)", // a span row
		"query s1-q0",   // S1's closing query line
		"query s2-q0",   // S2's closing query line
		"-- session",    // the session-scoped retry annotation
		"reconnect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged output missing %q:\n%s", want, out)
		}
	}
	// Both processes joined the same anchor-aligned timeline.
	if c := strings.Count(out, "joined"); c != 2 {
		t.Errorf("%d anchor lines, want 2 (one per role):\n%s", c, out)
	}
}

// TestRunTraceFilter keeps only the requested trace ID.
func TestRunTraceFilter(t *testing.T) {
	dir := t.TempDir()
	a := writeTestJournal(t, dir, "s1", "t-00000000000000aa")
	b := writeTestJournal(t, dir, "s2", "t-00000000000000bb")

	var buf bytes.Buffer
	if err := run([]string{"-trace", "t-00000000000000bb", a, b}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "t-00000000000000aa") || !strings.Contains(out, "t-00000000000000bb") {
		t.Errorf("-trace filter leaked the other trace:\n%s", out)
	}
	if err := run([]string{"-trace", "t-00000000000000cc", a, b}, &bytes.Buffer{}); err == nil {
		t.Error("filtering on an absent trace ID succeeded, want an error")
	}
}

// TestRunVerify exercises the chain verification mode, including a
// tampered journal.
func TestRunVerify(t *testing.T) {
	dir := t.TempDir()
	s1 := writeTestJournal(t, dir, "s1", "t-00000000000000aa")
	s2 := writeTestJournal(t, dir, "s2", "t-00000000000000aa")

	var buf bytes.Buffer
	if err := run([]string{"-verify", s1, s2}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if c := strings.Count(out, "chain OK"); c != 2 {
		t.Fatalf("%d per-file OK lines, want 2:\n%s", c, out)
	}
	if !strings.Contains(out, "across 2 journals") {
		t.Errorf("missing the summary line:\n%s", out)
	}

	// Flip one byte mid-file: verification must fail loudly.
	data, err := os.ReadFile(s1)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte("consensus"), []byte("CONSENSUS"), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("test journal does not contain the marker to tamper")
	}
	if err := os.WriteFile(s1, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", s1, s2}, &bytes.Buffer{}); err == nil {
		t.Error("verify accepted a tampered journal")
	}
}

// TestRunChrome exports a Chrome trace-event file and checks its shape.
func TestRunChrome(t *testing.T) {
	dir := t.TempDir()
	s1 := writeTestJournal(t, dir, "s1", "t-00000000000000aa")
	out := filepath.Join(dir, "run.json")

	var buf bytes.Buffer
	if err := run([]string{"-chrome", out, s1}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote ") {
		t.Errorf("no confirmation line: %q", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var meta, spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" || ev.Args["name"] != "s1" {
				t.Errorf("metadata event %+v, want process_name s1", ev)
			}
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	// 2 phase spans + 1 query span; the trace-begin anchor and the retry
	// are instants.
	if meta != 1 || spans != 3 || instants < 2 {
		t.Errorf("export has %d metadata, %d spans, %d instants; want 1/3/>=2", meta, spans, instants)
	}
}

// TestRunUsage covers the argument error paths.
func TestRunUsage(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "usage:") {
		t.Errorf("no-args error = %v, want usage", err)
	}
	if err := run([]string{filepath.Join(t.TempDir(), "absent.jsonl")}, &bytes.Buffer{}); err == nil {
		t.Error("merging a missing journal succeeded")
	}
}
