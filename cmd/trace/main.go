// Command trace inspects the event journals written by the servers, the
// user clients and the in-process engine (-journal / Config.JournalPath).
//
// Merge journals from every process of a run into per-query timelines:
//
//	trace s1.jsonl s2.jsonl user0.jsonl
//
// Verify the tamper-evident hash chain of each journal:
//
//	trace -verify s1.jsonl s2.jsonl
//
// Export a Chrome trace-event file (load it in chrome://tracing or Perfetto):
//
//	trace -chrome run.json s1.jsonl s2.jsonl
//
// Journals are grouped by the cross-process trace ID that S1 mints and
// propagates; each process's trace-begin anchor event marks when it joined
// the run, making clock skew between hosts visible in the header.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/privconsensus/privconsensus/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		verify  = fs.Bool("verify", false, "verify each journal's hash chain instead of merging")
		chrome  = fs.String("chrome", "", "write a Chrome trace-event JSON file to this path")
		traceID = fs.String("trace", "", "only show the trace with this ID (e.g. t-0123456789abcdef)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("usage: trace [-verify] [-chrome out.json] [-trace id] journal.jsonl ...")
	}
	if *verify {
		return verifyJournals(paths, out)
	}
	events, err := readJournals(paths)
	if err != nil {
		return err
	}
	traces := groupByTrace(events, *traceID)
	if len(traces) == 0 {
		if *traceID != "" {
			return fmt.Errorf("no events for trace %s", *traceID)
		}
		return fmt.Errorf("no events in %s", strings.Join(paths, ", "))
	}
	if *chrome != "" {
		return writeChrome(*chrome, traces, out)
	}
	for _, tr := range traces {
		renderTrace(out, tr)
	}
	return nil
}

// verifyJournals checks every file's hash chain and reports per-file record
// counts; the first broken chain aborts with its error.
func verifyJournals(paths []string, out io.Writer) error {
	total := 0
	for _, p := range paths {
		n, err := obs.VerifyJournalFile(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d records, chain OK\n", p, n)
		total += n
	}
	fmt.Fprintf(out, "verified %d records across %d journals\n", total, len(paths))
	return nil
}

// readJournals reads every journal leniently (live files and torn tails
// tolerated) into one event list.
func readJournals(paths []string) ([]obs.Event, error) {
	var all []obs.Event
	for _, p := range paths {
		evs, err := obs.ReadJournalFile(p)
		if err != nil {
			return nil, err
		}
		all = append(all, evs...)
	}
	return all, nil
}

// mergedTrace is every event of one cross-process trace, time-sorted.
type mergedTrace struct {
	id     string // "" for untraced processes
	events []obs.Event
}

// groupByTrace splits the events by trace ID (stable, sorted by ID, the
// untraced group last) and time-sorts each group. filter, when non-empty,
// keeps only that ID.
func groupByTrace(events []obs.Event, filter string) []mergedTrace {
	byID := map[string][]obs.Event{}
	for _, ev := range events {
		if filter != "" && ev.Trace != filter {
			continue
		}
		byID[ev.Trace] = append(byID[ev.Trace], ev)
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		if id != "" {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if _, ok := byID[""]; ok {
		ids = append(ids, "")
	}
	out := make([]mergedTrace, 0, len(ids))
	for _, id := range ids {
		evs := byID[id]
		sort.SliceStable(evs, func(a, b int) bool { return eventTime(evs[a]) < eventTime(evs[b]) })
		out = append(out, mergedTrace{id: id, events: evs})
	}
	return out
}

// eventTime positions an event on the timeline: the recorded start when it
// carries one (spans and point annotations are journaled in a batch at
// query end, so their append time is too late), the append time otherwise.
func eventTime(ev obs.Event) int64 {
	if ev.StartNs != 0 {
		return ev.StartNs
	}
	return ev.TimeNs
}

// anchorOffsets maps each role to its trace-begin anchor time; the earliest
// anchor (or event, absent anchors) is the trace origin.
func anchorOffsets(evs []obs.Event) (t0 int64, anchors map[string]int64, roles []string) {
	anchors = map[string]int64{}
	seen := map[string]bool{}
	for _, ev := range evs {
		if !seen[ev.Role] {
			seen[ev.Role] = true
			roles = append(roles, ev.Role)
		}
		if ev.Type == obs.EventTraceBegin {
			if _, ok := anchors[ev.Role]; !ok {
				anchors[ev.Role] = ev.TimeNs
			}
		}
	}
	sort.Strings(roles)
	t0 = int64(0)
	for _, ev := range evs {
		if t := eventTime(ev); t0 == 0 || (t != 0 && t < t0) {
			t0 = t
		}
	}
	for _, at := range anchors {
		if t0 == 0 || at < t0 {
			t0 = at
		}
	}
	return t0, anchors, roles
}

// barWidth is the column budget of the per-span Gantt bars.
const barWidth = 32

// renderTrace prints one trace as a per-query text Gantt across processes.
func renderTrace(w io.Writer, tr mergedTrace) {
	id := tr.id
	if id == "" {
		id = "(untraced)"
	}
	t0, anchors, roles := anchorOffsets(tr.events)
	fmt.Fprintf(w, "== trace %s: %d events from %s\n", id, len(tr.events), strings.Join(roles, ", "))
	for _, role := range roles {
		if at, ok := anchors[role]; ok {
			fmt.Fprintf(w, "   %-8s joined %+v after trace start\n", role, time.Duration(at-t0).Round(time.Microsecond))
		}
	}

	// Session-scoped events (instance -1): uploads, faults, retries,
	// rejections — one chronological list.
	session := filterEvents(tr.events, func(ev obs.Event) bool {
		return ev.Instance < 0 && ev.Type != obs.EventTraceBegin
	})
	if len(session) > 0 {
		fmt.Fprintf(w, "   -- session\n")
		for _, ev := range session {
			renderEventLine(w, ev, t0)
		}
	}

	for _, inst := range instancesOf(tr.events) {
		fmt.Fprintf(w, "   -- instance %d\n", inst)
		spans := filterEvents(tr.events, func(ev obs.Event) bool {
			return ev.Instance == inst && ev.Type == obs.EventSpan
		})
		renderGantt(w, spans)
		for _, ev := range filterEvents(tr.events, func(ev obs.Event) bool {
			return ev.Instance == inst && ev.Type != obs.EventSpan && ev.Type != obs.EventQuery
		}) {
			renderEventLine(w, ev, t0)
		}
		for _, ev := range filterEvents(tr.events, func(ev obs.Event) bool {
			return ev.Instance == inst && ev.Type == obs.EventQuery
		}) {
			line := fmt.Sprintf("   query %s [%s] attempt %d: %s in %v (tx %s rx %s)",
				ev.Query, ev.Role, ev.Attempt, ev.Note,
				time.Duration(ev.DurNs).Round(time.Microsecond),
				humanBytes(ev.BytesSent), humanBytes(ev.BytesReceived))
			if ev.Err != "" {
				line += " err=" + ev.Err
			}
			fmt.Fprintln(w, line)
		}
	}
	fmt.Fprintln(w)
}

// instancesOf returns the sorted distinct non-session instance indices.
func instancesOf(evs []obs.Event) []int {
	seen := map[int]bool{}
	var out []int
	for _, ev := range evs {
		if ev.Instance >= 0 && !seen[ev.Instance] {
			seen[ev.Instance] = true
			out = append(out, ev.Instance)
		}
	}
	sort.Ints(out)
	return out
}

// filterEvents returns the events matching keep, preserving time order.
func filterEvents(evs []obs.Event, keep func(obs.Event) bool) []obs.Event {
	var out []obs.Event
	for _, ev := range evs {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// renderGantt prints one bar line per span, positioned within the
// instance's own [earliest start, latest end] window so concurrent phases
// on different processes line up visually.
func renderGantt(w io.Writer, spans []obs.Event) {
	if len(spans) == 0 {
		return
	}
	lo, hi := int64(0), int64(0)
	for _, s := range spans {
		start, end := s.StartNs, s.StartNs+s.DurNs
		if lo == 0 || start < lo {
			lo = start
		}
		if end > hi {
			hi = end
		}
	}
	window := hi - lo
	if window <= 0 {
		window = 1
	}
	for _, s := range spans {
		from := int((s.StartNs - lo) * barWidth / window)
		cols := int(s.DurNs * barWidth / window)
		if cols < 1 {
			cols = 1
		}
		if from >= barWidth {
			from = barWidth - 1
		}
		if from+cols > barWidth {
			cols = barWidth - from
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("#", cols) +
			strings.Repeat(" ", barWidth-from-cols)
		line := fmt.Sprintf("   %-6s %-26s %10v [%s] tx %s rx %s",
			s.Role, s.Phase, time.Duration(s.DurNs).Round(time.Microsecond), bar,
			humanBytes(s.BytesSent), humanBytes(s.BytesReceived))
		if s.Err != "" {
			line += " err=" + s.Err
		}
		fmt.Fprintln(w, line)
	}
}

// renderEventLine prints one point annotation (retry, fault, rejection,
// quorum decision, δ correction, spend) with its offset from trace start.
func renderEventLine(w io.Writer, ev obs.Event, t0 int64) {
	at := time.Duration(eventTime(ev) - t0).Round(time.Microsecond)
	detail := ev.Note
	if ev.Phase != "" {
		detail = strings.TrimSpace(ev.Phase + " " + detail)
	}
	line := fmt.Sprintf("   %-6s %-16s +%-12v %s", ev.Role, ev.Type, at, detail)
	if ev.Attempt > 0 {
		line += fmt.Sprintf(" attempt=%d", ev.Attempt)
	}
	if ev.DurNs > 0 {
		line += fmt.Sprintf(" dur=%v", time.Duration(ev.DurNs).Round(time.Microsecond))
	}
	if ev.Err != "" {
		line += " err=" + ev.Err
	}
	fmt.Fprintln(w, strings.TrimRight(line, " "))
}

// humanBytes renders a byte count compactly (b, kB, MB).
func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fkB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%db", n)
	}
}

// chromeEvent is one Chrome trace-event record (the subset Perfetto and
// chrome://tracing consume: complete "X" spans, instant "i" markers and
// process_name metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// writeChrome exports every trace to one Chrome trace-event JSON file. Each
// role becomes a process (named via metadata events), each query instance a
// thread, so the cross-process Gantt appears natively in the viewer.
func writeChrome(path string, traces []mergedTrace, out io.Writer) error {
	var events []chromeEvent
	pids := map[string]int{}
	pidOf := func(role string) int {
		if pid, ok := pids[role]; ok {
			return pid
		}
		pid := len(pids) + 1
		pids[role] = pid
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": role},
		})
		return pid
	}
	n := 0
	for _, tr := range traces {
		for _, ev := range tr.events {
			pid := pidOf(ev.Role)
			tid := ev.Instance
			if tid < 0 {
				tid = 0 // session lane
			} else {
				tid++ // instance i on thread i+1
			}
			ts := float64(eventTime(ev)) / 1e3 // µs
			args := map[string]any{"trace": tr.id, "seq": ev.Seq}
			if ev.Query != "" {
				args["query"] = ev.Query
			}
			if ev.Note != "" {
				args["note"] = ev.Note
			}
			if ev.Err != "" {
				args["err"] = ev.Err
			}
			switch ev.Type {
			case obs.EventSpan, obs.EventQuery:
				name := ev.Phase
				if ev.Type == obs.EventQuery {
					name = "query " + ev.Query
				}
				args["tx"] = ev.BytesSent
				args["rx"] = ev.BytesReceived
				events = append(events, chromeEvent{
					Name: name, Ph: "X", Ts: ts, Dur: float64(ev.DurNs) / 1e3,
					Pid: pid, Tid: tid, Args: args,
				})
			default:
				events = append(events, chromeEvent{
					Name: ev.Type, Ph: "i", Ts: ts, Pid: pid, Tid: tid,
					S: "p", Args: args,
				})
			}
			n++
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write chrome trace: %w", err)
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(map[string]any{"traceEvents": events}); err != nil {
		f.Close()
		return fmt.Errorf("write chrome trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d events (%d traces) to %s\n", n, len(traces), path)
	return nil
}
