GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark pass: the parallelism sweep plus the protocol step bench,
# one iteration each, so CI catches bench-harness rot without long runs.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkArgmaxParallelism|BenchmarkTable1ProtocolSteps' -benchtime=1x .

ci: build vet race bench
