GO ?= go
FUZZTIME ?= 60s

.PHONY: build vet fmt-check test race chaos chaos-packed soak soak-full fuzz cover bench bench-guard obs-smoke loadgen-smoke loadgen-smoke-packed ingest-guard ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos suite: full two-server deployments driven through seeded fault
# schedules (resets, stalls, partial writes) with the retry/backoff session
# protocol enabled, plus the ingestion-tree relay-death/re-homing scenario.
# Run under the race detector; every instance must either produce the
# correct label or fail cleanly.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' -v ./internal/deploy/ ./internal/ingest/

# The same chaos suite with slot-packed submissions end to end: CHAOS_PACKED
# flips every test deployment to packed wire (packed submit frames, packed
# relay pre-sums, the blinded unpack round). Outcomes must be identical to
# the unpacked suite — the assertions do not change.
chaos-packed:
	CHAOS_PACKED=1 $(GO) test -race -count=1 -run 'TestChaos' -v ./internal/deploy/ ./internal/ingest/

# Continuous-operation soak: a serve-mode deployment streams 200 queries
# from concurrent tenants under the seeded chaos fault schedule with one
# epoch/key rotation mid-soak, under the race detector. The test asserts
# zero unclean failures, that the durable ε-ledger exactly equals an
# accountant replayed from the journaled per-query spends, and that both
# journals chain-verify (re-checked from the CLI with cmd/trace).
# SOAK_FULL=1 escalates to the full 1000-query soak (`make soak-full`).
soak:
	SOAK=1 SOAK_JOURNAL_DIR=$(CURDIR)/soak-journals \
		$(GO) test -race -count=1 -run 'TestSoakServe' -v -timeout 30m ./internal/deploy/
	$(GO) run ./cmd/trace -verify soak-journals/*.jsonl

soak-full:
	SOAK_FULL=1 SOAK_JOURNAL_DIR=$(CURDIR)/soak-journals \
		$(GO) test -race -count=1 -run 'TestSoakServe' -v -timeout 60m ./internal/deploy/
	$(GO) run ./cmd/trace -verify soak-journals/*.jsonl

# Fuzz the attack surfaces: the transport frame decoder, the mux unwrapper,
# the partial-write recomposition, the fault-spec parser, and the fixed-base
# exponentiation kernels (differential against big.Int.Exp). One target per
# invocation (go fuzz requires it); FUZZTIME bounds each.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadMessage$$' -fuzztime $(FUZZTIME) ./internal/transport/
	$(GO) test -run '^$$' -fuzz '^FuzzMuxUnwrap$$' -fuzztime $(FUZZTIME) ./internal/transport/
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentRecompose$$' -fuzztime $(FUZZTIME) ./internal/transport/
	$(GO) test -run '^$$' -fuzz '^FuzzFaultSpec$$' -fuzztime $(FUZZTIME) ./internal/transport/
	$(GO) test -run '^$$' -fuzz '^FuzzFixedBaseExp$$' -fuzztime $(FUZZTIME) ./internal/mathutil/
	$(GO) test -run '^$$' -fuzz '^FuzzMultiExp$$' -fuzztime $(FUZZTIME) ./internal/mathutil/

# Coverage with a regression floor (scripts/coverage_baseline.txt); leaves
# the profile at results/coverage.out.
cover:
	./scripts/coverage_guard.sh

# Short benchmark pass: the parallelism sweep, the argmax strategy ablation
# and the protocol step bench, one iteration each, so CI catches
# bench-harness rot without long runs. BenchmarkProtocolJSON also refreshes
# the machine-readable record in results/BENCH_protocol.json.
bench:
	BENCH_JSON=$(CURDIR)/results/BENCH_protocol.json \
		$(GO) test -run '^$$' -bench 'BenchmarkArgmaxParallelism|BenchmarkArgmaxStrategy|BenchmarkTable1ProtocolSteps|BenchmarkProtocolJSON' -benchtime=1x .

# Regenerate the bench record, then fail if the secure-comparison phase
# regressed more than 25% against the committed baseline.
bench-guard: bench
	./scripts/bench_guard.sh

# End-to-end observability smoke test: two real server processes with the
# admin endpoint enabled, one full query, then scrape /metrics and /healthz.
obs-smoke:
	./scripts/obs_smoke.sh

# Ingestion load harness smoke: 1k simulated users through a two-level
# relay tree on loopback plus a tree-vs-direct full-protocol parity run,
# refreshing the machine-readable record in results/BENCH_ingest.json. The
# compare arm re-measures the same shape with slot packing on, so the
# committed record carries the packed-vs-unpacked before/after numbers.
# Scale it up by hand with e.g. `go run ./cmd/loadgen -large 100000`.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -users 1000 -relays 2 -batch 64 -workers 8 \
		-parity-users 20 -packed-compare -out results/BENCH_ingest.json

# The ingest lane with packing on as the primary mode: packed frames
# through the relay tree and sinks, plus the packed tree-vs-direct parity
# run (the process exits non-zero on a parity mismatch). The record is not
# committed — the packed before/after numbers live in BENCH_ingest.json.
loadgen-smoke-packed:
	$(GO) run ./cmd/loadgen -users 1000 -relays 2 -batch 64 -workers 8 \
		-parity-users 20 -packed

# Regenerate the ingestion record, then fail if throughput or ack p99
# regressed more than 25% against the committed baseline (skips gracefully
# when the records were measured on different machine shapes).
ingest-guard: loadgen-smoke
	./scripts/ingest_guard.sh

ci: build vet fmt-check race bench obs-smoke ingest-guard
