GO ?= go

.PHONY: build vet test race bench obs-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark pass: the parallelism sweep plus the protocol step bench,
# one iteration each, so CI catches bench-harness rot without long runs.
# BenchmarkProtocolJSON also refreshes the machine-readable record in
# results/BENCH_protocol.json.
bench:
	BENCH_JSON=$(CURDIR)/results/BENCH_protocol.json \
		$(GO) test -run '^$$' -bench 'BenchmarkArgmaxParallelism|BenchmarkTable1ProtocolSteps|BenchmarkProtocolJSON' -benchtime=1x .

# End-to-end observability smoke test: two real server processes with the
# admin endpoint enabled, one full query, then scrape /metrics and /healthz.
obs-smoke:
	./scripts/obs_smoke.sh

ci: build vet race bench obs-smoke
