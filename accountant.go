package privconsensus

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"github.com/privconsensus/privconsensus/internal/dp"
	"github.com/privconsensus/privconsensus/internal/fsx"
)

// Accountant tracks the cumulative Rényi-DP privacy spend of a sequence of
// consensus queries and converts it to (ε, δ)-differential privacy.
//
// Every query pays the Sparse Vector Technique cost (Lemma 1 of the paper:
// 9α/2σ₁² at order α); queries whose label is actually released
// additionally pay the Report Noisy Maximum cost (Lemma 2: α/σ₂²).
//
// An Accountant created with NewAccountantAt is durable: its state is
// rewritten (write-temp-fsync-rename-fsync, so a crash never truncates or
// loses it) after every recorded spend, and reloaded on construction. The
// state path is guarded by an exclusive lock file for the accountant's
// lifetime, so two processes pointed at the same path cannot interleave
// spends; release it with Close. An Accountant is safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	inner *dp.Accountant
	path  string
	lock  *fsx.Lock
}

// NewAccountant returns an empty in-memory accountant.
func NewAccountant() *Accountant {
	return &Accountant{inner: dp.NewAccountant()}
}

// NewAccountantAt returns an accountant whose spend is persisted at path:
// an existing state file is reloaded (so privacy spend survives process
// restarts), a missing one starts the accountant empty, and every
// RecordQuery/RecordRelease atomically rewrites the file with fsync.
//
// The path is guarded by an exclusive lock file (path + ".lock") held
// until Close: a second process (or a second accountant in this process)
// opening the same path fails immediately rather than silently
// interleaving — and under-counting — the privacy spend.
func NewAccountantAt(path string) (*Accountant, error) {
	lock, err := fsx.Acquire(path)
	if err != nil {
		if errors.Is(err, fsx.ErrLocked) {
			return nil, fmt.Errorf("privconsensus: accountant state %s is in use by another server: %w", path, err)
		}
		return nil, fmt.Errorf("privconsensus: lock accountant: %w", err)
	}
	a := &Accountant{inner: dp.NewAccountant(), path: path, lock: lock}
	b, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// First run: the file appears on the first recorded spend.
	case err != nil:
		lock.Unlock()
		return nil, fmt.Errorf("privconsensus: load accountant: %w", err)
	default:
		if err := json.Unmarshal(b, a.inner); err != nil {
			lock.Unlock()
			return nil, fmt.Errorf("privconsensus: load accountant %s: %w", path, err)
		}
	}
	return a, nil
}

// Close releases the exclusive lock on the state path so another
// accountant may open it. The in-memory view stays readable; further
// spends are rejected. Idempotent, and a no-op for in-memory accountants.
func (a *Accountant) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lock == nil {
		return nil
	}
	lock := a.lock
	a.lock = nil
	return lock.Unlock()
}

// RecordQuery records the SVT spend of one threshold check with deviation
// sigma1 (in votes). Call once per query, released or not.
func (a *Accountant) RecordQuery(sigma1 float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.checkOpen(); err != nil {
		return err
	}
	if err := a.inner.AddSVT(sigma1); err != nil {
		return err
	}
	return a.persist()
}

// RecordRelease records the RNM spend of one released label with deviation
// sigma2.
func (a *Accountant) RecordRelease(sigma2 float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.checkOpen(); err != nil {
		return err
	}
	if err := a.inner.AddRNM(sigma2); err != nil {
		return err
	}
	return a.persist()
}

// checkOpen rejects spends on a durable accountant whose state lock has
// been released: recording would race whichever accountant now owns the
// path. Callers hold mu. In-memory accountants are always open.
func (a *Accountant) checkOpen() error {
	if a.path != "" && a.lock == nil {
		return fmt.Errorf("privconsensus: accountant %s is closed", a.path)
	}
	return nil
}

// persist atomically rewrites the state file with fsync on both the data
// and the directory. Callers hold mu. The spend was already recorded in
// memory when persistence fails, so the in-memory view only ever
// over-counts — never under-reports — the durable state.
func (a *Accountant) persist() error {
	if a.path == "" {
		return nil
	}
	if a.lock == nil {
		return fmt.Errorf("privconsensus: accountant %s is closed", a.path)
	}
	b, err := json.Marshal(a.inner)
	if err != nil {
		return fmt.Errorf("privconsensus: encode accountant: %w", err)
	}
	if err := fsx.WriteFileSync(a.path, append(b, '\n'), 0o600); err != nil {
		return fmt.Errorf("privconsensus: persist accountant: %w", err)
	}
	return nil
}

// Counts returns the number of recorded SVT (per-query) and RNM
// (per-release) invocations.
func (a *Accountant) Counts() (queries, releases int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inner.Counts()
}

// Epsilon converts the accumulated spend to (ε, δ)-DP, returning ε and the
// optimal Rényi order α*.
func (a *Accountant) Epsilon(delta float64) (eps, alphaStar float64, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inner.Epsilon(delta)
}

// QueryEpsilon returns the per-query (ε, δ) guarantee of the paper's
// Theorem 5 for a single full protocol execution:
//
//	ε = sqrt(2·(9/σ₁² + 2/σ₂²)·log(1/δ)) + (9/(2σ₁²) + 1/σ₂²)
func QueryEpsilon(sigma1, sigma2, delta float64) (float64, error) {
	return dp.TheoremFiveEpsilon(sigma1, sigma2, delta)
}

// PlanNoise returns the smallest common noise multiplier m such that
// answering `queries` full consensus queries with sigma1 = sigma2 = m
// satisfies (epsilon, delta)-DP. Use it to pick noise levels for a privacy
// budget before running a workload.
func PlanNoise(epsilon, delta float64, queries int) (float64, error) {
	return dp.SigmaForBudget(epsilon, delta, queries, 1, 1)
}
