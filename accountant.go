package privconsensus

import (
	"github.com/privconsensus/privconsensus/internal/dp"
)

// Accountant tracks the cumulative Rényi-DP privacy spend of a sequence of
// consensus queries and converts it to (ε, δ)-differential privacy.
//
// Every query pays the Sparse Vector Technique cost (Lemma 1 of the paper:
// 9α/2σ₁² at order α); queries whose label is actually released
// additionally pay the Report Noisy Maximum cost (Lemma 2: α/σ₂²).
type Accountant struct {
	inner *dp.Accountant
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{inner: dp.NewAccountant()}
}

// RecordQuery records the SVT spend of one threshold check with deviation
// sigma1 (in votes). Call once per query, released or not.
func (a *Accountant) RecordQuery(sigma1 float64) error {
	return a.inner.AddSVT(sigma1)
}

// RecordRelease records the RNM spend of one released label with deviation
// sigma2.
func (a *Accountant) RecordRelease(sigma2 float64) error {
	return a.inner.AddRNM(sigma2)
}

// Epsilon converts the accumulated spend to (ε, δ)-DP, returning ε and the
// optimal Rényi order α*.
func (a *Accountant) Epsilon(delta float64) (eps, alphaStar float64, err error) {
	return a.inner.Epsilon(delta)
}

// QueryEpsilon returns the per-query (ε, δ) guarantee of the paper's
// Theorem 5 for a single full protocol execution:
//
//	ε = sqrt(2·(9/σ₁² + 2/σ₂²)·log(1/δ)) + (9/(2σ₁²) + 1/σ₂²)
func QueryEpsilon(sigma1, sigma2, delta float64) (float64, error) {
	return dp.TheoremFiveEpsilon(sigma1, sigma2, delta)
}

// PlanNoise returns the smallest common noise multiplier m such that
// answering `queries` full consensus queries with sigma1 = sigma2 = m
// satisfies (epsilon, delta)-DP. Use it to pick noise levels for a privacy
// budget before running a workload.
func PlanNoise(epsilon, delta float64, queries int) (float64, error) {
	return dp.SigmaForBudget(epsilon, delta, queries, 1, 1)
}
