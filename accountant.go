package privconsensus

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"github.com/privconsensus/privconsensus/internal/dp"
)

// Accountant tracks the cumulative Rényi-DP privacy spend of a sequence of
// consensus queries and converts it to (ε, δ)-differential privacy.
//
// Every query pays the Sparse Vector Technique cost (Lemma 1 of the paper:
// 9α/2σ₁² at order α); queries whose label is actually released
// additionally pay the Report Noisy Maximum cost (Lemma 2: α/σ₂²).
//
// An Accountant created with NewAccountantAt is durable: its state is
// rewritten (write-temp-then-rename, so a crash never truncates it) after
// every recorded spend, and reloaded on construction. An Accountant is
// safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	inner *dp.Accountant
	path  string
}

// NewAccountant returns an empty in-memory accountant.
func NewAccountant() *Accountant {
	return &Accountant{inner: dp.NewAccountant()}
}

// NewAccountantAt returns an accountant whose spend is persisted at path:
// an existing state file is reloaded (so privacy spend survives process
// restarts), a missing one starts the accountant empty, and every
// RecordQuery/RecordRelease atomically rewrites the file.
func NewAccountantAt(path string) (*Accountant, error) {
	a := &Accountant{inner: dp.NewAccountant(), path: path}
	b, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// First run: the file appears on the first recorded spend.
	case err != nil:
		return nil, fmt.Errorf("privconsensus: load accountant: %w", err)
	default:
		if err := json.Unmarshal(b, a.inner); err != nil {
			return nil, fmt.Errorf("privconsensus: load accountant %s: %w", path, err)
		}
	}
	return a, nil
}

// RecordQuery records the SVT spend of one threshold check with deviation
// sigma1 (in votes). Call once per query, released or not.
func (a *Accountant) RecordQuery(sigma1 float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.inner.AddSVT(sigma1); err != nil {
		return err
	}
	return a.persist()
}

// RecordRelease records the RNM spend of one released label with deviation
// sigma2.
func (a *Accountant) RecordRelease(sigma2 float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.inner.AddRNM(sigma2); err != nil {
		return err
	}
	return a.persist()
}

// persist atomically rewrites the state file. Callers hold mu. The spend
// was already recorded in memory when persistence fails, so the in-memory
// view only ever over-counts — never under-reports — the durable state.
func (a *Accountant) persist() error {
	if a.path == "" {
		return nil
	}
	b, err := json.Marshal(a.inner)
	if err != nil {
		return fmt.Errorf("privconsensus: encode accountant: %w", err)
	}
	tmp := a.path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o600); err != nil {
		return fmt.Errorf("privconsensus: persist accountant: %w", err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		return fmt.Errorf("privconsensus: persist accountant: %w", err)
	}
	return nil
}

// Counts returns the number of recorded SVT (per-query) and RNM
// (per-release) invocations.
func (a *Accountant) Counts() (queries, releases int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inner.Counts()
}

// Epsilon converts the accumulated spend to (ε, δ)-DP, returning ε and the
// optimal Rényi order α*.
func (a *Accountant) Epsilon(delta float64) (eps, alphaStar float64, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inner.Epsilon(delta)
}

// QueryEpsilon returns the per-query (ε, δ) guarantee of the paper's
// Theorem 5 for a single full protocol execution:
//
//	ε = sqrt(2·(9/σ₁² + 2/σ₂²)·log(1/δ)) + (9/(2σ₁²) + 1/σ₂²)
func QueryEpsilon(sigma1, sigma2, delta float64) (float64, error) {
	return dp.TheoremFiveEpsilon(sigma1, sigma2, delta)
}

// PlanNoise returns the smallest common noise multiplier m such that
// answering `queries` full consensus queries with sigma1 = sigma2 = m
// satisfies (epsilon, delta)-DP. Use it to pick noise levels for a privacy
// budget before running a workload.
func PlanNoise(epsilon, delta float64, queries int) (float64, error) {
	return dp.SigmaForBudget(epsilon, delta, queries, 1, 1)
}
