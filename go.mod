module github.com/privconsensus/privconsensus

go 1.22
