package privconsensus

import (
	"fmt"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/ml"
	"github.com/privconsensus/privconsensus/internal/pate"
)

// PATEConfig drives one end-to-end semi-supervised knowledge-transfer
// simulation (Fig. 1 of the paper): synthetic data is generated and
// partitioned across users, teachers train locally, the aggregator labels
// its pool via the consensus mechanism (or the noisy-argmax baseline), and
// a student model trains on the labeled pairs.
type PATEConfig struct {
	// Dataset selects the synthetic generator: "mnist", "svhn" or
	// "celeba" (the multi-label attribute task).
	Dataset string
	// Scale shrinks the paper-sized sample counts ((0, 1]; 1.0 = full).
	Scale float64
	// Users is the number of teachers.
	Users int
	// Division selects the data distribution: "even", "2-8", "3-7",
	// "4-6".
	Division string
	// VoteType is "one-hot" (default) or "softmax". Ignored for celeba.
	VoteType string
	// Queries is the aggregator's unlabeled pool size (paper: 9000).
	Queries int
	// UseConsensus selects the paper's mechanism; false runs the noisy
	// argmax baseline.
	UseConsensus bool
	// ThresholdFrac is the consensus threshold (default 0.6 if zero).
	ThresholdFrac float64
	// Sigma1, Sigma2 are the DP noise deviations in votes.
	Sigma1, Sigma2 float64
	// Seed makes the run reproducible.
	Seed int64
	// Epochs overrides the default SGD epoch count when positive.
	Epochs int
	// SelfTrain enables the semi-supervised self-training extension for
	// multiclass datasets: the student pseudo-labels rejected queries it
	// is confident about and refits, at no extra privacy cost.
	SelfTrain bool
}

// PATEResult summarizes a pipeline run.
type PATEResult struct {
	// UserAccMean is the mean teacher accuracy on held-out data.
	UserAccMean float64
	// MajorityAcc / MinorityAcc are the group means under uneven
	// divisions (zero for even splits).
	MajorityAcc, MinorityAcc float64
	// LabelAccuracy is the fraction of released labels that are correct.
	LabelAccuracy float64
	// Retention is the fraction of queries that reached consensus.
	Retention float64
	// StudentAccuracy is the aggregator model's held-out accuracy.
	StudentAccuracy float64
	// Epsilon is the (ε, δ=1e-6) spend of the whole labeling run.
	Epsilon float64
	// Retained is the number of labeled pairs the student trained on.
	Retained int
}

// RunPATE executes the configured pipeline and returns its metrics.
func RunPATE(cfg PATEConfig) (*PATEResult, error) {
	div, err := parseDivision(cfg.Division)
	if err != nil {
		return nil, err
	}
	thr := cfg.ThresholdFrac
	if thr == 0 {
		thr = 0.6
	}
	train := ml.DefaultTrainConfig()
	if cfg.Epochs > 0 {
		train.Epochs = cfg.Epochs
	}

	if cfg.Dataset == "celeba" {
		acfg := pate.AttrPipelineConfig{
			Spec:          dataset.CelebAAttrSpec(),
			Scale:         cfg.Scale,
			Users:         cfg.Users,
			Division:      div,
			Queries:       cfg.Queries,
			UseConsensus:  cfg.UseConsensus,
			ThresholdFrac: thr,
			Sigma1:        cfg.Sigma1,
			Sigma2:        cfg.Sigma2,
			Train:         train,
			Seed:          cfg.Seed,
		}
		res, err := pate.RunAttrPipeline(acfg)
		if err != nil {
			return nil, err
		}
		return &PATEResult{
			UserAccMean: res.UserAccMean,
			MajorityAcc: res.MajorityAcc, MinorityAcc: res.MinorityAcc,
			LabelAccuracy: res.LabelAccuracy, Retention: res.Retention,
			StudentAccuracy: res.StudentAccuracy, Epsilon: res.Epsilon,
			Retained: res.Retained,
		}, nil
	}

	var spec dataset.Spec
	switch cfg.Dataset {
	case "mnist":
		spec = dataset.MNISTLike()
	case "svhn":
		spec = dataset.SVHNLike()
	default:
		return nil, fmt.Errorf("privconsensus: unknown dataset %q (want mnist, svhn or celeba)", cfg.Dataset)
	}
	vt := pate.OneHot
	switch cfg.VoteType {
	case "", "one-hot", "onehot":
	case "softmax":
		vt = pate.Softmax
	default:
		return nil, fmt.Errorf("privconsensus: unknown vote type %q", cfg.VoteType)
	}
	pcfg := pate.PipelineConfig{
		Spec:          spec,
		Scale:         cfg.Scale,
		Users:         cfg.Users,
		Division:      div,
		VoteType:      vt,
		Queries:       cfg.Queries,
		UseConsensus:  cfg.UseConsensus,
		ThresholdFrac: thr,
		Sigma1:        cfg.Sigma1,
		Sigma2:        cfg.Sigma2,
		Train:         train,
		Seed:          cfg.Seed,
		SelfTrain:     cfg.SelfTrain,
	}
	res, err := pate.RunPipeline(pcfg)
	if err != nil {
		return nil, err
	}
	return &PATEResult{
		UserAccMean: res.UserAccMean,
		MajorityAcc: res.MajorityAcc, MinorityAcc: res.MinorityAcc,
		LabelAccuracy: res.LabelAccuracy, Retention: res.Retention,
		StudentAccuracy: res.StudentAccuracy, Epsilon: res.Epsilon,
		Retained: res.Retained,
	}, nil
}

// parseDivision maps the public division names onto the internal enum.
func parseDivision(s string) (dataset.Division, error) {
	switch s {
	case "", "even":
		return dataset.DivisionEven, nil
	case "2-8":
		return dataset.Division28, nil
	case "3-7":
		return dataset.Division37, nil
	case "4-6":
		return dataset.Division46, nil
	default:
		return 0, fmt.Errorf("privconsensus: unknown division %q (want even, 2-8, 3-7 or 4-6)", s)
	}
}
