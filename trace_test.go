package privconsensus

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/obs"
)

// TestTraceBytesMatchMeterExactly is the observability acceptance check:
// the QueryTrace's per-phase byte totals must equal the transport meter's
// totals exactly, because step labels and trace phases are the same strings
// and FillTrace copies the meter's numbers verbatim.
func TestTraceBytesMatchMeterExactly(t *testing.T) {
	for _, par := range []int{1, 4} {
		e := testEngine(t, 5, 4)
		e.cfg.Parallelism = par
		e.pcfg.Parallelism = par
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		votes := [][]float64{
			oneHot(4, 2), oneHot(4, 2), oneHot(4, 2), oneHot(4, 2), oneHot(4, 1),
		}
		out, stats, err := e.LabelInstanceMetered(ctx, votes)
		cancel()
		if err != nil {
			t.Fatalf("par=%d: LabelInstanceMetered: %v", par, err)
		}
		if !out.Consensus {
			t.Fatalf("par=%d: expected consensus", par)
		}
		tr := e.LastTrace()
		if tr == nil {
			t.Fatalf("par=%d: LastTrace is nil after a query", par)
		}

		var meterSent, meterRecvd int64
		byStep := map[string]StepStats{}
		for _, s := range stats {
			meterSent += s.BytesSent
			meterRecvd += s.BytesReceived
			byStep[s.Step] = s
		}
		traceSent, traceRecvd := tr.TotalBytes()
		if traceSent != meterSent || traceRecvd != meterRecvd {
			t.Fatalf("par=%d: trace bytes %d/%d != meter bytes %d/%d",
				par, traceSent, traceRecvd, meterSent, meterRecvd)
		}
		// Per-phase equality, not just totals.
		for step, ms := range byStep {
			span, ok := tr.Span(step)
			if !ok {
				t.Fatalf("par=%d: metered step %q has no trace span", par, step)
			}
			if span.BytesSent != ms.BytesSent || span.BytesReceived != ms.BytesReceived {
				t.Fatalf("par=%d: step %q trace %d/%d != meter %d/%d",
					par, step, span.BytesSent, span.BytesReceived, ms.BytesSent, ms.BytesReceived)
			}
		}

		if tr.Result == "" || tr.Duration <= 0 {
			t.Fatalf("par=%d: trace not sealed: %+v", par, tr)
		}
		if len(tr.Spans) < 5 {
			t.Fatalf("par=%d: expected >= 5 phase spans, got %d", par, len(tr.Spans))
		}
		if _, ok := tr.Span("secure-comparison(4)"); !ok {
			t.Fatalf("par=%d: comparison phase missing from trace", par)
		}
	}
}

// TestTraceRecordsOpsAndUnmeteredQueries covers the plain LabelInstance
// path: even without the metered entry point every query produces a trace
// with op counts and traffic.
func TestTraceRecordsOpsAndUnmeteredQueries(t *testing.T) {
	e := testEngine(t, 4, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	votes := [][]float64{oneHot(3, 1), oneHot(3, 1), oneHot(3, 1), oneHot(3, 0)}
	if _, err := e.LabelInstance(ctx, votes); err != nil {
		t.Fatal(err)
	}
	tr := e.LastTrace()
	if tr == nil {
		t.Fatal("LastTrace nil after unmetered query")
	}
	if sent, recvd := tr.TotalBytes(); sent == 0 || recvd == 0 {
		t.Fatalf("unmetered query trace has no traffic: %d/%d", sent, recvd)
	}
	cmp, ok := tr.Span("secure-comparison(4)")
	if !ok {
		t.Fatal("comparison span missing")
	}
	if cmp.Ops["dgk_enc"] == 0 {
		t.Fatalf("comparison span recorded no DGK encryptions: %+v", cmp.Ops)
	}
	if tr.Summary() == "" {
		t.Fatal("empty trace summary")
	}
}

// TestEngineJournalMatchesMeter extends the byte-equality acceptance check
// to the durable journal: with Config.JournalPath set, the span events
// written to disk must carry exactly the transport meter's numbers, the
// chain must verify, and accountant spends must be on the record.
func TestEngineJournalMatchesMeter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.jsonl")
	cfg := DefaultConfig(5)
	cfg.Classes = 4
	cfg.Sigma1, cfg.Sigma2 = 0.5, 0.3
	cfg.Seed = 42
	cfg.JournalPath = path
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	votes := [][]float64{
		oneHot(4, 2), oneHot(4, 2), oneHot(4, 2), oneHot(4, 2), oneHot(4, 2),
	}
	_, stats, err := e.LabelInstanceMetered(ctx, votes)
	if err != nil {
		t.Fatal(err)
	}
	// A batch query on top records privacy spends (σ > 0).
	if _, err := e.LabelBatch(ctx, [][][]float64{votes}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if n, err := obs.VerifyJournalFile(path); err != nil || n == 0 {
		t.Fatalf("engine journal: %d records, err %v", n, err)
	}
	evs, err := obs.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Type != obs.EventTraceBegin || !strings.HasPrefix(evs[0].Trace, "t-") {
		t.Fatalf("first record %+v, want a trace-begin anchor with a minted t-… ID", evs[0])
	}

	var meterSent, meterRecvd int64
	for _, s := range stats {
		meterSent += s.BytesSent
		meterRecvd += s.BytesReceived
	}
	var spanSent, spanRecvd int64
	var queries, spends int
	for _, ev := range evs {
		switch ev.Type {
		case obs.EventSpan:
			if ev.Instance == 0 { // the metered query
				spanSent += ev.BytesSent
				spanRecvd += ev.BytesReceived
			}
		case obs.EventQuery:
			queries++
		case obs.EventSpend:
			spends++
		}
	}
	if spanSent != meterSent || spanRecvd != meterRecvd {
		t.Errorf("journaled span bytes %d/%d != meter totals %d/%d (the invariant must survive the trip to disk)",
			spanSent, spanRecvd, meterSent, meterRecvd)
	}
	if queries != 2 {
		t.Errorf("journaled %d query records, want 2 (metered + batch)", queries)
	}
	// One SVT spend always, one RNM spend only on consensus release.
	if spends < 1 {
		t.Error("no accountant spend events journaled despite σ > 0")
	}
}

// TestEngineStats checks the library-level metrics snapshot carries the
// counter families the admin endpoint exposes.
func TestEngineStats(t *testing.T) {
	e := testEngine(t, 3, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	votes := [][]float64{oneHot(3, 0), oneHot(3, 0), oneHot(3, 0)}
	if _, err := e.LabelInstance(ctx, votes); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range e.Stats() {
		seen[p.Name] = true
	}
	for _, want := range []string{
		"paillier_encrypt_total", "paillier_decrypt_total", "paillier_add_total",
		"dgk_encrypt_total", "dgk_comparisons_total", "dgk_zerotest_total",
		"transport_step_bytes_total", "protocol_phase_seconds",
	} {
		if !seen[want] {
			t.Errorf("Stats missing metric family %q", want)
		}
	}
	if obs.Default.CounterValue("paillier_encrypt_total") == 0 {
		t.Error("paillier encrypt counter is zero after a query")
	}
}
