// Hospitals: the paper's motivating scenario (§I). A group of hospitals
// holds highly unbalanced private datasets — a few research hospitals hold
// most of the records, many community clinics hold a little each — and a
// public-health aggregator wants a joint diagnostic model without any
// hospital sharing its records.
//
// This example runs the full PATE pipeline twice on SVHN-like (hard)
// synthetic data with a 2-8 division: once with the private consensus
// protocol and once with the noisy-argmax baseline, showing that consensus
// filtering yields more accurate labels and a stronger aggregator model at
// the same privacy level.
package main

import (
	"fmt"
	"log"

	privconsensus "github.com/privconsensus/privconsensus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := privconsensus.PATEConfig{
		Dataset:       "svhn", // the harder multiclass generator
		Scale:         0.05,   // ~3.6k training records across hospitals
		Users:         25,     // 25 hospitals
		Division:      "2-8",  // 20% of records spread over 80% of hospitals
		Queries:       600,    // unlabeled public-health instances
		ThresholdFrac: 0.6,    // consensus needs 60% agreement
		Sigma1:        4,      // DP noise (votes)
		Sigma2:        4,
		Seed:          2024,
	}

	consensus := base
	consensus.UseConsensus = true
	consRes, err := privconsensus.RunPATE(consensus)
	if err != nil {
		return fmt.Errorf("consensus run: %w", err)
	}

	baseline := base
	baseline.UseConsensus = false
	baseRes, err := privconsensus.RunPATE(baseline)
	if err != nil {
		return fmt.Errorf("baseline run: %w", err)
	}

	fmt.Println("25 hospitals, 2-8 division (community clinics hold 20% of data)")
	fmt.Printf("  clinic (majority) accuracy:   %.3f\n", consRes.MajorityAcc)
	fmt.Printf("  research (minority) accuracy: %.3f\n", consRes.MinorityAcc)
	fmt.Println()
	fmt.Printf("%-26s %-12s %-12s %-12s %-10s\n", "method", "label acc", "retention", "model acc", "epsilon")
	fmt.Printf("%-26s %-12.3f %-12.3f %-12.3f %-10.2f\n",
		"private consensus", consRes.LabelAccuracy, consRes.Retention, consRes.StudentAccuracy, consRes.Epsilon)
	fmt.Printf("%-26s %-12.3f %-12.3f %-12.3f %-10.2f\n",
		"noisy-argmax baseline", baseRes.LabelAccuracy, baseRes.Retention, baseRes.StudentAccuracy, baseRes.Epsilon)
	fmt.Println()
	if consRes.LabelAccuracy > baseRes.LabelAccuracy {
		fmt.Println("consensus filtering discarded contested instances and produced cleaner labels.")
	} else {
		fmt.Println("note: at this seed the baseline matched consensus; rerun with more queries.")
	}
	return nil
}
