// Securecompare: the DGK secure comparison primitive on its own — Yao's
// millionaires' problem. Alice and Bob each hold a private number; at the
// end both learn only the single bit "Alice >= Bob", never the numbers.
//
// This is the exact primitive the private consensus protocol uses for its
// Secure Comparison and Threshold Checking steps (Alg. 5 steps 4, 5, 8);
// here it runs standalone over an in-memory transport.
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"math/big"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Bob owns the DGK key pair (the comparison's "party B").
	params := dgk.Params{NBits: 256, TBits: 60, U: 1009, L: 40}
	fmt.Printf("generating DGK key (%d-bit modulus, %d-bit values)...\n", params.NBits, params.L)
	bobKey, err := dgk.GenerateKey(rand.Reader, params)
	if err != nil {
		return fmt.Errorf("generate key: %w", err)
	}

	duels := []struct {
		alice, bob int64
	}{
		{1_000_000, 999_999},
		{42, 42_000},
		{7777, 7777},
		{-350, 125}, // signed comparison also supported
	}

	for _, d := range duels {
		aliceConn, bobConn := transport.Pair()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)

		type result struct {
			geq bool
			err error
		}
		aliceDone := make(chan result, 1)
		go func() {
			// Alice holds only the public key and her own value.
			geq, err := bobKey.Public().CompareSignedA(ctx, rand.Reader, aliceConn, big.NewInt(d.alice))
			aliceDone <- result{geq, err}
		}()
		start := time.Now()
		bobGeq, err := bobKey.CompareSignedB(ctx, rand.Reader, bobConn, big.NewInt(d.bob))
		elapsed := time.Since(start)
		aliceRes := <-aliceDone
		cancel()
		aliceConn.Close()
		bobConn.Close()
		if err != nil {
			return fmt.Errorf("bob: %w", err)
		}
		if aliceRes.err != nil {
			return fmt.Errorf("alice: %w", aliceRes.err)
		}
		if aliceRes.geq != bobGeq {
			return fmt.Errorf("parties disagree")
		}

		verdict := "alice >= bob"
		if !bobGeq {
			verdict = "alice < bob"
		}
		ok := bobGeq == (d.alice >= d.bob)
		fmt.Printf("alice=%-9d bob=%-9d -> %-14s (correct=%v, %v, %d bits compared)\n",
			d.alice, d.bob, verdict, ok, elapsed.Round(time.Millisecond), params.L)
	}
	fmt.Println("\nneither party ever saw the other's number — only the comparison bit.")
	return nil
}
