// Privacybudget: plan and track a differential-privacy budget with the
// Rényi-DP accountant.
//
// The example answers: "I have a privacy budget of (eps=8.19, delta=1e-6)
// — the setting of the paper's Fig. 5 — and expect to answer 1000 consensus
// queries of which roughly 70% will release a label. How much noise must
// users add, and where does the budget actually land?"
package main

import (
	"fmt"
	"log"

	privconsensus "github.com/privconsensus/privconsensus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		epsBudget = 8.19
		delta     = 1e-6
		queries   = 1000
	)

	// Plan: the conservative multiplier assumes every query releases.
	sigma, err := privconsensus.PlanNoise(epsBudget, delta, queries)
	if err != nil {
		return fmt.Errorf("plan noise: %w", err)
	}
	fmt.Printf("budget (eps=%.2f, delta=%.0e) over %d queries -> sigma1 = sigma2 = %.2f votes\n",
		epsBudget, delta, queries, sigma)

	// Per-query guarantee of the paper's Theorem 5 at that noise level.
	perQuery, err := privconsensus.QueryEpsilon(sigma, sigma, delta)
	if err != nil {
		return err
	}
	fmt.Printf("single-query guarantee (Theorem 5): eps = %.4f\n", perQuery)

	// Track the actual spend: only ~70% of queries pass the threshold,
	// so the realized epsilon comes in under budget.
	acc := privconsensus.NewAccountant()
	released := 0
	for q := 0; q < queries; q++ {
		if err := acc.RecordQuery(sigma); err != nil {
			return err
		}
		if q%10 < 7 { // 70% release rate
			if err := acc.RecordRelease(sigma); err != nil {
				return err
			}
			released++
		}
	}
	eps, alpha, err := acc.Epsilon(delta)
	if err != nil {
		return err
	}
	fmt.Printf("realized spend after %d queries (%d released): eps = %.3f at Renyi order %.1f\n",
		queries, released, eps, alpha)
	fmt.Printf("headroom versus budget: %.3f\n", epsBudget-eps)

	// Sensitivity: how the budget moves with the release rate.
	fmt.Println("\nrelease-rate sensitivity:")
	for _, rate := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
		a := privconsensus.NewAccountant()
		for q := 0; q < queries; q++ {
			if err := a.RecordQuery(sigma); err != nil {
				return err
			}
			if float64(q%100) < rate*100 {
				if err := a.RecordRelease(sigma); err != nil {
					return err
				}
			}
		}
		e, _, err := a.Epsilon(delta)
		if err != nil {
			return err
		}
		fmt.Printf("  release rate %.0f%% -> eps = %.3f\n", rate*100, e)
	}
	return nil
}
