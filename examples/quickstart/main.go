// Quickstart: label a handful of query instances with the private
// consensus protocol using the public Engine API.
//
// Ten users vote on 10-class instances; the protocol releases the winning
// label only when the (noisy) highest vote clears the 60% threshold.
package main

import (
	"context"
	"fmt"
	"log"

	privconsensus "github.com/privconsensus/privconsensus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A deterministic engine for 10 users and 10 classes with the
	// paper's default threshold (60%) and mild noise.
	cfg := privconsensus.DefaultConfig(10)
	cfg.Sigma1, cfg.Sigma2 = 2, 2
	cfg.Seed = 7
	engine, err := privconsensus.NewEngine(cfg)
	if err != nil {
		return fmt.Errorf("create engine: %w", err)
	}

	oneHot := func(label int) []float64 {
		v := make([]float64, cfg.Classes)
		v[label] = 1
		return v
	}

	scenarios := []struct {
		name  string
		votes [][]float64
	}{
		{
			name: "strong agreement (9 of 10 vote class 3)",
			votes: [][]float64{
				oneHot(3), oneHot(3), oneHot(3), oneHot(3), oneHot(3),
				oneHot(3), oneHot(3), oneHot(3), oneHot(3), oneHot(7),
			},
		},
		{
			name: "split vote (no class reaches 60%)",
			votes: [][]float64{
				oneHot(0), oneHot(0), oneHot(1), oneHot(1), oneHot(2),
				oneHot(2), oneHot(3), oneHot(3), oneHot(4), oneHot(5),
			},
		},
	}

	ctx := context.Background()
	for _, sc := range scenarios {
		out, err := engine.LabelInstance(ctx, sc.votes)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		if out.Consensus {
			fmt.Printf("%-45s -> released label %d\n", sc.name, out.Label)
		} else {
			fmt.Printf("%-45s -> no consensus, instance discarded\n", sc.name)
		}
	}

	// Privacy spend of the two queries (one released, one rejected).
	acc := privconsensus.NewAccountant()
	for range scenarios {
		if err := acc.RecordQuery(cfg.Sigma1); err != nil {
			return err
		}
	}
	if err := acc.RecordRelease(cfg.Sigma2); err != nil {
		return err
	}
	eps, alpha, err := acc.Epsilon(1e-6)
	if err != nil {
		return err
	}
	fmt.Printf("privacy spend so far: eps = %.3f (delta = 1e-6, optimal Renyi order %.1f)\n", eps, alpha)
	return nil
}
