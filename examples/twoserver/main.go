// Twoserver: run S1 and S2 as separate TCP endpoints, the deployment shape
// of the paper's threat model (two non-colluding servers operated by
// different organizations).
//
// The process plays all roles for demonstration purposes: it generates key
// material, builds each user's encrypted submission, starts S1 on a TCP
// listener, connects S2 to it, and runs the full Alg. 5 protocol over the
// socket.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	privconsensus "github.com/privconsensus/privconsensus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const users, classes = 8, 6
	cfg := privconsensus.Config{
		Classes:       classes,
		Users:         users,
		ThresholdFrac: 0.6,
		Sigma1:        1,
		Sigma2:        1,
		Seed:          99,
	}
	engine, err := privconsensus.NewEngine(cfg)
	if err != nil {
		return fmt.Errorf("create engine: %w", err)
	}

	// Users build their encrypted submissions: 7 of 8 vote class 4.
	subs := make([]*privconsensus.Submission, users)
	for u := 0; u < users; u++ {
		votes := make([]float64, classes)
		if u == 3 {
			votes[1] = 1
		} else {
			votes[4] = 1
		}
		sub, err := engine.SubmissionFor(u, votes)
		if err != nil {
			return fmt.Errorf("user %d submission: %w", u, err)
		}
		subs[u] = sub
	}

	// S1 listens; S2 dials.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("S1 listening on %s\n", l.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type result struct {
		out *privconsensus.Outcome
		err error
	}
	s1Done := make(chan result, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			s1Done <- result{nil, err}
			return
		}
		defer conn.Close()
		fmt.Printf("S1 accepted S2 from %s\n", conn.RemoteAddr())
		out, err := engine.RunServer(ctx, privconsensus.RoleS1, conn, subs)
		s1Done <- result{out, err}
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()

	start := time.Now()
	out2, err := engine.RunServer(ctx, privconsensus.RoleS2, conn, subs)
	if err != nil {
		return fmt.Errorf("S2: %w", err)
	}
	r1 := <-s1Done
	if r1.err != nil {
		return fmt.Errorf("S1: %w", r1.err)
	}

	fmt.Printf("protocol finished in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("S1 outcome: consensus=%v label=%d\n", r1.out.Consensus, r1.out.Label)
	fmt.Printf("S2 outcome: consensus=%v label=%d\n", out2.Consensus, out2.Label)
	if *r1.out != *out2 {
		return fmt.Errorf("servers disagree")
	}
	fmt.Println("both servers agree; neither ever saw an individual vote.")
	return nil
}
