package privconsensus

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/fsx"
)

// partialEngine builds a deterministic engine with partial participation
// enabled.
func partialEngine(t *testing.T, users, classes int, quorum float64) *Engine {
	t.Helper()
	cfg := DefaultConfig(users)
	cfg.Classes = classes
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.Seed = 42
	cfg.Quorum = quorum
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestEnginePartialParticipation(t *testing.T) {
	e := partialEngine(t, 5, 4, 0.5)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Two absent users (nil rows); the three present all vote class 2, so
	// the fraction threshold 0.6×3 = 1.8 votes is cleared.
	votes := [][]float64{oneHot(4, 2), nil, oneHot(4, 2), nil, oneHot(4, 2)}
	out, err := e.LabelInstance(ctx, votes)
	if err != nil {
		t.Fatalf("LabelInstance: %v", err)
	}
	if !out.Consensus || out.Label != 2 {
		t.Fatalf("outcome %+v, want consensus on 2 over the present subset", out)
	}
	if out.Participants != 3 || out.Dropped != 2 {
		t.Fatalf("participants %d dropped %d, want 3/2", out.Participants, out.Dropped)
	}
}

func TestEngineQuorumNotMet(t *testing.T) {
	e := partialEngine(t, 5, 4, 4)
	ctx := context.Background()
	votes := [][]float64{oneHot(4, 2), nil, oneHot(4, 2), nil, oneHot(4, 2)}
	_, err := e.LabelInstance(ctx, votes)
	if !errors.Is(err, ErrQuorumNotMet) {
		t.Fatalf("LabelInstance err = %v, want ErrQuorumNotMet", err)
	}
	// Without Quorum set, a nil row stays an input error, not a dropout.
	full := testEngine(t, 3, 4)
	if _, err := full.LabelInstance(ctx, [][]float64{oneHot(4, 1), nil, oneHot(4, 1)}); err == nil {
		t.Fatal("nil row without Quorum should be rejected")
	}
}

func TestEngineAbsoluteThresholdUnderDropout(t *testing.T) {
	// Two of five users vote the same class. Fraction mode scales the
	// threshold to the participants (0.6×2 = 1.2 < 2 → consensus); absolute
	// mode keeps it at 0.6×5 = 3 votes, which two voters cannot clear.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	votes := [][]float64{oneHot(4, 1), nil, oneHot(4, 1), nil, nil}

	frac := partialEngine(t, 5, 4, 0.4)
	out, err := frac.LabelInstance(ctx, votes)
	if err != nil {
		t.Fatalf("fraction mode: %v", err)
	}
	if !out.Consensus || out.Label != 1 {
		t.Fatalf("fraction mode outcome %+v, want consensus on 1", out)
	}

	cfg := frac.Config()
	cfg.AbsoluteThreshold = true
	abs, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine absolute: %v", err)
	}
	out, err = abs.LabelInstance(ctx, votes)
	if err != nil {
		t.Fatalf("absolute mode: %v", err)
	}
	if out.Consensus {
		t.Fatalf("absolute mode outcome %+v, want no consensus at 2 of 5 voters", out)
	}
	if out.Participants != 2 || out.Dropped != 3 {
		t.Fatalf("participants %d dropped %d, want 2/3", out.Participants, out.Dropped)
	}
}

func TestEngineLabelBatchDegraded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "accountant.json")
	cfg := DefaultConfig(4)
	cfg.Classes = 3
	// Tiny but non-zero noise: the privacy spend is recorded while the
	// unanimous 4-vs-2.4-vote margin stays deterministic.
	cfg.Sigma1, cfg.Sigma2 = 1e-4, 1e-4
	cfg.Seed = 42
	cfg.Quorum = 2
	cfg.AccountantPath = path
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	batch := [][][]float64{
		{oneHot(3, 1), oneHot(3, 1), oneHot(3, 1), oneHot(3, 1)}, // full participation
		{oneHot(3, 1), nil, nil, nil},                            // 1 < quorum 2
	}
	res, err := e.LabelBatch(ctx, batch)
	if err != nil {
		t.Fatalf("LabelBatch: %v", err)
	}
	if len(res.Failed) != 1 || res.Failed[0].Query != 1 || !errors.Is(res.Failed[0].Err, ErrQuorumNotMet) {
		t.Fatalf("Failed = %+v, want query 1 with ErrQuorumNotMet", res.Failed)
	}
	if !res.Outcomes[0].Consensus || res.Outcomes[0].Label != 1 {
		t.Fatalf("query 0 outcome %+v, want consensus on 1", res.Outcomes[0])
	}
	if res.Outcomes[1].Consensus || res.Outcomes[1].Label != -1 {
		t.Fatalf("query 1 outcome %+v, want failure placeholder", res.Outcomes[1])
	}
	if res.Participants != 4 || res.Dropped != 4 {
		t.Fatalf("batch participants %d dropped %d, want 4/4", res.Participants, res.Dropped)
	}
	// The quorum miss still pays its SVT cost (conservative accounting):
	// two queries recorded, one release.
	q, r := e.Accountant().Counts()
	if q != 2 || r != 1 {
		t.Fatalf("accountant counts %d/%d, want 2 queries / 1 release", q, r)
	}
	if res.Epsilon <= 0 {
		t.Fatalf("Epsilon = %g, want > 0", res.Epsilon)
	}

	// The spend is durable: a fresh engine on the same path resumes from
	// the recorded counts and its batches report cumulative epsilon. The
	// first engine must release its exclusive state lock before the second
	// may open the path.
	if _, err := NewAccountantAt(path); err == nil {
		t.Fatalf("accountant path double-opened while the engine holds the lock")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine reload: %v", err)
	}
	defer e2.Close()
	if q, r := e2.Accountant().Counts(); q != 2 || r != 1 {
		t.Fatalf("reloaded counts %d/%d, want 2/1", q, r)
	}
	eps2, _, err := e2.Accountant().Epsilon(1e-6)
	if err != nil {
		t.Fatalf("Epsilon: %v", err)
	}
	if math.Abs(eps2-res.Epsilon) > 1e-9 {
		t.Fatalf("reloaded epsilon %g != batch epsilon %g", eps2, res.Epsilon)
	}
}

func TestAccountantPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	a, err := NewAccountantAt(path)
	if err != nil {
		t.Fatalf("NewAccountantAt: %v", err)
	}
	if err := a.RecordQuery(1.5); err != nil {
		t.Fatal(err)
	}
	if err := a.RecordRelease(2.0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state file not written: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}

	// The exclusive lock rejects a concurrent open of the same state path
	// with a typed error; after Close the path is free again, but the
	// closed accountant refuses further spends.
	if _, err := NewAccountantAt(path); !errors.Is(err, fsx.ErrLocked) {
		t.Fatalf("concurrent open err = %v, want fsx.ErrLocked", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.RecordQuery(1.5); err == nil {
		t.Fatalf("RecordQuery after Close succeeded")
	}
	b, err := NewAccountantAt(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	defer b.Close()
	if q, r := b.Counts(); q != 1 || r != 1 {
		t.Fatalf("reloaded counts %d/%d, want 1/1", q, r)
	}
	epsA, _, err := a.Epsilon(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	epsB, _, err := b.Epsilon(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(epsA-epsB) > 1e-12 {
		t.Fatalf("epsilon changed across reload: %g vs %g", epsA, epsB)
	}

	// Hostile or corrupt state files are rejected up front, not at query
	// time.
	for name, contents := range map[string]string{
		"truncated": `{"coefficient": 1.2`,
		"negative":  `{"coefficient": -1, "svt_count": 0, "rnm_count": 0}`,
		"badcount":  `{"coefficient": 1, "svt_count": -3, "rnm_count": 0}`,
	} {
		p := filepath.Join(dir, name+".json")
		if err := os.WriteFile(p, []byte(contents), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := NewAccountantAt(p); err == nil {
			t.Errorf("%s state file was accepted", name)
		}
	}
}
