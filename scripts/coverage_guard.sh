#!/usr/bin/env bash
# coverage_guard.sh — coverage regression guard.
#
# Runs the full test suite with a coverage profile and fails when the total
# statement coverage drops below the committed floor in
# scripts/coverage_baseline.txt. The profile is left at
# results/coverage.out so CI can upload it as an artifact.
#
# usage: coverage_guard.sh [profile-path]
set -euo pipefail
cd "$(dirname "$0")/.."

profile=${1:-results/coverage.out}
baseline_file=scripts/coverage_baseline.txt
[ -f "$baseline_file" ] || { echo "coverage-guard: FAIL: $baseline_file missing"; exit 1; }
baseline=$(tr -d '[:space:]' <"$baseline_file")

mkdir -p "$(dirname "$profile")"
go test -count=1 -coverprofile="$profile" ./...

total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "coverage-guard: FAIL: could not read total coverage from $profile"
    exit 1
fi
echo "coverage-guard: total statement coverage ${total}% (floor ${baseline}%)"
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t < b) }'; then
    echo "coverage-guard: FAIL: coverage ${total}% fell below the ${baseline}% floor"
    exit 1
fi
echo "coverage-guard: PASS"
