#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test.
#
# Spins up both protocol servers as real processes with the admin endpoint
# enabled on S1 and event journaling on everywhere, submits one full query
# through real users, then scrapes /healthz, /metrics and /debug/traces and
# asserts the protocol's counter families are exposed with live values.
# Finally it verifies every journal's hash chain with cmd/trace and merges
# them into one cross-process timeline.
#
# Every listener binds port 0 and the chosen addresses are parsed from the
# server logs, so the script cannot collide with other processes (or a
# concurrent copy of itself). On failure it prints the chosen addresses and
# the server logs.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
s1_pid=""
s2_pid=""
S1_ADDR="(unbound)"
S2_ADDR="(unbound)"
METRICS_ADDR="(unbound)"
cleanup() {
    [ -n "$s1_pid" ] && kill "$s1_pid" 2>/dev/null || true
    [ -n "$s2_pid" ] && kill "$s2_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

dump_state() {
    echo "addresses: S1=$S1_ADDR S2=$S2_ADDR metrics=$METRICS_ADDR"
    echo "--- s1.log"; cat "$workdir/s1.log" 2>/dev/null || true
    echo "--- s2.log"; cat "$workdir/s2.log" 2>/dev/null || true
}

# wait_log FILE SED-PATTERN — poll FILE until the \1 capture of SED-PATTERN
# appears (10s budget) and print it.
wait_log() {
    local file=$1 re=$2 out=""
    for _ in $(seq 1 100); do
        out=$(sed -n "s/.*$re.*/\1/p" "$file" 2>/dev/null | head -n 1)
        if [ -n "$out" ]; then
            echo "$out"
            return 0
        fi
        sleep 0.1
    done
    return 1
}

echo "== building binaries"
go build -o "$workdir" ./cmd/keygen ./cmd/server ./cmd/user ./cmd/trace

echo "== generating keys"
"$workdir/keygen" -out "$workdir/keys" -users 2 -classes 4 \
    -threshold 0.5 -sigma1 0 -sigma2 0 >/dev/null

echo "== starting servers (port 0, addresses from logs)"
"$workdir/server" -role s1 -keys "$workdir/keys/s1.json" -listen 127.0.0.1:0 \
    -instances 1 -seed 11 -metrics-addr 127.0.0.1:0 -metrics-linger 60s \
    -journal "$workdir/s1.jsonl" \
    >"$workdir/s1.log" 2>&1 &
s1_pid=$!
if ! S1_ADDR=$(wait_log "$workdir/s1.log" 'S1 listening on \([0-9.]*:[0-9]*\)'); then
    echo "FAIL: S1 never reported its listen address"
    dump_state
    exit 1
fi
if ! METRICS_ADDR=$(wait_log "$workdir/s1.log" 'metrics endpoint on http:\/\/\([0-9.]*:[0-9]*\)\/metrics'); then
    echo "FAIL: S1 never reported its metrics address"
    dump_state
    exit 1
fi

"$workdir/server" -role s2 -keys "$workdir/keys/s2.json" -listen 127.0.0.1:0 \
    -peer "$S1_ADDR" -instances 1 -seed 12 -journal "$workdir/s2.jsonl" \
    >"$workdir/s2.log" 2>&1 &
s2_pid=$!
if ! S2_ADDR=$(wait_log "$workdir/s2.log" 'S2 listening on \([0-9.]*:[0-9]*\)'); then
    echo "FAIL: S2 never reported its listen address"
    dump_state
    exit 1
fi
echo "   S1=$S1_ADDR S2=$S2_ADDR metrics=$METRICS_ADDR"

echo "== submitting votes"
for u in 0 1; do
    "$workdir/user" -keys "$workdir/keys/public.json" -user "$u" \
        -s1 "$S1_ADDR" -s2 "$S2_ADDR" -votes 2 -seed $((20 + u)) \
        -journal "$workdir/user$u.jsonl" >/dev/null
done

# S2 exits when its instance completes; S1's metrics endpoint lingers.
wait "$s2_pid"
s2_pid=""

echo "== scraping /healthz"
ok=""
for _ in $(seq 1 50); do
    if body=$(curl -fsS "http://$METRICS_ADDR/healthz" 2>/dev/null); then
        ok="$body"
        break
    fi
    sleep 0.2
done
if [ "$ok" != "ok" ]; then
    echo "FAIL: /healthz did not return ok (got: '$ok')"
    dump_state
    exit 1
fi

echo "== scraping /metrics"
metrics=$(curl -fsS "http://$METRICS_ADDR/metrics")
fail=0
for family in paillier_encrypt_total paillier_decrypt_total paillier_add_total \
    dgk_comparisons_total dgk_encrypt_total transport_step_bytes_total \
    transport_wire_bytes_total protocol_phase_seconds_bucket deploy_queries_total \
    privconsensus_build_info; do
    if ! grep -q "$family" <<<"$metrics"; then
        echo "FAIL: /metrics missing family $family"
        fail=1
    fi
done
enc=$(awk '/^paillier_encrypt_total/ {print $2; exit}' <<<"$metrics")
if [ -z "$enc" ] || [ "$enc" -le 0 ] 2>/dev/null; then
    echo "FAIL: paillier_encrypt_total not positive (got: '$enc')"
    fail=1
fi
if ! grep -q 'deploy_queries_total{outcome="consensus",role="s1"} 1' <<<"$metrics"; then
    echo "FAIL: deploy_queries_total does not record the consensus query"
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    dump_state
    exit 1
fi

echo "== scraping /debug/traces"
traces=$(curl -fsS "http://$METRICS_ADDR/debug/traces")
if ! grep -q '"total": [1-9]' <<<"$traces"; then
    echo "FAIL: /debug/traces reports no completed query traces"
    echo "$traces"
    dump_state
    exit 1
fi
if ! grep -q '"Spans"' <<<"$traces"; then
    echo "FAIL: /debug/traces carries no phase spans"
    dump_state
    exit 1
fi

kill "$s1_pid" 2>/dev/null || true
wait "$s1_pid" 2>/dev/null || true
s1_pid=""

echo "== verifying journal hash chains"
if ! "$workdir/trace" -verify "$workdir/s1.jsonl" "$workdir/s2.jsonl" \
    "$workdir/user0.jsonl" "$workdir/user1.jsonl"; then
    echo "FAIL: a journal hash chain did not verify"
    dump_state
    exit 1
fi

echo "== merging journals into one timeline"
merged=$("$workdir/trace" "$workdir/s1.jsonl" "$workdir/s2.jsonl" \
    "$workdir/user0.jsonl" "$workdir/user1.jsonl")
headers=$(grep -c '^== trace ' <<<"$merged" || true)
if [ "$headers" -ne 1 ]; then
    echo "FAIL: merged output has $headers trace timelines, want exactly 1 shared trace"
    echo "$merged"
    dump_state
    exit 1
fi
if ! grep -q -- '-- instance 0' <<<"$merged"; then
    echo "FAIL: merged timeline is missing the instance section"
    echo "$merged"
    dump_state
    exit 1
fi

echo "obs-smoke: PASS"
