#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test.
#
# Spins up both protocol servers as real processes with the admin endpoint
# enabled on S1, submits one full query through real users, then scrapes
# /healthz and /metrics and asserts the protocol's counter families are
# exposed with live values.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
s1_pid=""
s2_pid=""
cleanup() {
    [ -n "$s1_pid" ] && kill "$s1_pid" 2>/dev/null || true
    [ -n "$s2_pid" ] && kill "$s2_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir" ./cmd/keygen ./cmd/server ./cmd/user

echo "== generating keys"
"$workdir/keygen" -out "$workdir/keys" -users 2 -classes 4 \
    -threshold 0.5 -sigma1 0 -sigma2 0 >/dev/null

S1_ADDR=127.0.0.1:19701
S2_ADDR=127.0.0.1:19702
METRICS_ADDR=127.0.0.1:19790

echo "== starting servers"
"$workdir/server" -role s1 -keys "$workdir/keys/s1.json" -listen "$S1_ADDR" \
    -instances 1 -seed 11 -metrics-addr "$METRICS_ADDR" -metrics-linger 60s \
    >"$workdir/s1.log" 2>&1 &
s1_pid=$!
sleep 1
"$workdir/server" -role s2 -keys "$workdir/keys/s2.json" -listen "$S2_ADDR" \
    -peer "$S1_ADDR" -instances 1 -seed 12 >"$workdir/s2.log" 2>&1 &
s2_pid=$!
sleep 1

echo "== submitting votes"
for u in 0 1; do
    "$workdir/user" -keys "$workdir/keys/public.json" -user "$u" \
        -s1 "$S1_ADDR" -s2 "$S2_ADDR" -votes 2 -seed $((20 + u)) >/dev/null
done

# S2 exits when its instance completes; S1's metrics endpoint lingers.
wait "$s2_pid"
s2_pid=""

echo "== scraping /healthz"
ok=""
for _ in $(seq 1 50); do
    if body=$(curl -fsS "http://$METRICS_ADDR/healthz" 2>/dev/null); then
        ok="$body"
        break
    fi
    sleep 0.2
done
if [ "$ok" != "ok" ]; then
    echo "FAIL: /healthz did not return ok (got: '$ok')"
    echo "--- s1.log"; cat "$workdir/s1.log"
    exit 1
fi

echo "== scraping /metrics"
metrics=$(curl -fsS "http://$METRICS_ADDR/metrics")
fail=0
for family in paillier_encrypt_total paillier_decrypt_total paillier_add_total \
    dgk_comparisons_total dgk_encrypt_total transport_step_bytes_total \
    transport_wire_bytes_total protocol_phase_seconds_bucket deploy_queries_total; do
    if ! grep -q "$family" <<<"$metrics"; then
        echo "FAIL: /metrics missing family $family"
        fail=1
    fi
done
enc=$(awk '/^paillier_encrypt_total/ {print $2; exit}' <<<"$metrics")
if [ -z "$enc" ] || [ "$enc" -le 0 ] 2>/dev/null; then
    echo "FAIL: paillier_encrypt_total not positive (got: '$enc')"
    fail=1
fi
if ! grep -q 'deploy_queries_total{outcome="consensus",role="s1"} 1' <<<"$metrics"; then
    echo "FAIL: deploy_queries_total does not record the consensus query"
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    echo "--- s1.log"; cat "$workdir/s1.log"
    exit 1
fi

kill "$s1_pid" 2>/dev/null || true
wait "$s1_pid" 2>/dev/null || true
s1_pid=""

echo "obs-smoke: PASS"
