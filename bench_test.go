package privconsensus

// Benchmark harness: one benchmark per paper table/figure (see DESIGN.md's
// experiment index) plus ablation benches for the design choices called out
// there. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches execute a reduced-scale experiment per iteration and
// report the headline metric via b.ReportMetric, so `-bench` output records
// both runtime and reproduced values.

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/experiments"
	"github.com/privconsensus/privconsensus/internal/ml"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// benchOptions returns experiment options small enough for benchmarking.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:   0.01,
		Queries: 100,
		Users:   []int{10, 25},
		Reps:    1,
		Seed:    1,
		Train:   ml.TrainConfig{Epochs: 10, LearnRate: 0.3, L2: 1e-4, BatchSize: 16},
	}
}

// BenchmarkTable1ProtocolSteps reproduces Table I: the full cryptographic
// protocol per query instance, with per-step times printed by
// cmd/experiments table1. Here the benchmark measures the end-to-end
// per-instance cost.
func BenchmarkTable1ProtocolSteps(b *testing.B) {
	cfg := experiments.ProtocolBenchConfig{Instances: 1, Users: 10, Classes: 10, Seed: 1, ForceConsensus: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.ProtocolBench(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2MessageSizes reproduces Table II: per-step traffic of one
// protocol instance, reported as bytes-per-party metrics.
func BenchmarkTable2MessageSizes(b *testing.B) {
	var last *experiments.ProtocolBenchResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.ProtocolBench(experiments.ProtocolBenchConfig{
			Instances: 1, Users: 10, Classes: 10, Seed: int64(i + 1), ForceConsensus: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		for _, s := range last.Steps {
			b.ReportMetric(float64(s.AvgBytesPerParty), s.Step+"-bytes")
		}
		b.ReportMetric(float64(last.UserToServerBytes), "user-to-server-bytes")
	}
}

// BenchmarkTable3Retention reproduces Table III: retention and label
// accuracy on SVHN-like data under uneven divisions.
func BenchmarkTable3Retention(b *testing.B) {
	opts := benchOptions()
	opts.Users = []int{10}
	var cells []experiments.Table3Cell
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		var err error
		cells, err = experiments.Table3(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(cells) > 0 {
		b.ReportMetric(cells[0].Retention, "retention-2-8")
		b.ReportMetric(cells[0].LabelAcc, "labelacc-2-8")
	}
}

// BenchmarkFig2UserAccuracy reproduces Fig. 2: user accuracy vs user count
// and data distribution.
func BenchmarkFig2UserAccuracy(b *testing.B) {
	opts := benchOptions()
	var figs []experiments.Figure
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		var err error
		figs, err = experiments.Fig2(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(figs) > 0 && len(figs[0].Series) > 0 {
		s := figs[0].Series[0]
		b.ReportMetric(s.Y[0], "useracc-few-users")
		b.ReportMetric(s.Y[len(s.Y)-1], "useracc-many-users")
	}
}

// BenchmarkFig3Accuracy reproduces Fig. 3: consensus vs baseline label and
// aggregator accuracy across privacy levels.
func BenchmarkFig3Accuracy(b *testing.B) {
	opts := benchOptions()
	opts.Users = []int{10}
	var figs []experiments.Figure
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		var err error
		figs, err = experiments.Fig3(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(figs) > 0 {
		// Series 0 is consensus at the lowest-noise level; series 1 the
		// matching baseline.
		b.ReportMetric(figs[0].Series[0].Y[0], "labelacc-consensus")
		b.ReportMetric(figs[0].Series[1].Y[0], "labelacc-baseline")
	}
}

// BenchmarkFig4VoteTypes reproduces Fig. 4: one-hot vs softmax aggregator
// accuracy.
func BenchmarkFig4VoteTypes(b *testing.B) {
	opts := benchOptions()
	opts.Users = []int{10}
	var figs []experiments.Figure
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		var err error
		figs, err = experiments.Fig4(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(figs) >= 2 {
		b.ReportMetric(figs[0].Series[0].Y[0], "aggacc-onehot")
		b.ReportMetric(figs[1].Series[0].Y[0], "aggacc-softmax")
	}
}

// BenchmarkFig5Threshold reproduces Fig. 5: aggregator accuracy across
// consensus thresholds and uneven divisions.
func BenchmarkFig5Threshold(b *testing.B) {
	opts := benchOptions()
	opts.Users = []int{10}
	var figs []experiments.Figure
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		var err error
		figs, err = experiments.Fig5(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(figs) > 0 {
		s := figs[0].Series[0]
		b.ReportMetric(s.Y[0], "aggacc-thr30")
		b.ReportMetric(s.Y[len(s.Y)-1], "aggacc-thr90")
	}
}

// BenchmarkFig6CelebA reproduces Fig. 6: the multi-label CelebA-like task.
func BenchmarkFig6CelebA(b *testing.B) {
	opts := benchOptions()
	opts.Users = []int{8}
	opts.Scale = 0.003
	opts.Queries = 30
	var figs []experiments.Figure
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		var err error
		figs, err = experiments.Fig6(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(figs) > 0 {
		b.ReportMetric(figs[0].Series[0].Y[0], "labelacc-even")
	}
}

// BenchmarkSelfTraining ablates the semi-supervised student extension:
// supervised-only vs self-training on the rejected queries.
func BenchmarkSelfTraining(b *testing.B) {
	for _, selfTrain := range []bool{false, true} {
		name := "supervised"
		if selfTrain {
			name = "self-train"
		}
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := RunPATE(PATEConfig{
					Dataset:       "svhn",
					Scale:         0.02,
					Users:         10,
					Division:      "even",
					Queries:       200,
					UseConsensus:  true,
					ThresholdFrac: 0.75,
					Sigma1:        1.5,
					Sigma2:        1.5,
					Seed:          int64(i + 1),
					Epochs:        15,
					SelfTrain:     selfTrain,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = res.StudentAccuracy
			}
			b.ReportMetric(acc, "student-acc")
		})
	}
}

// BenchmarkArgmaxParallelism sweeps the protocol worker bound over the
// paper's K=10 workload and isolates the comparison phases — the all-pairs
// DGK argmax rounds that the multiplexed transport parallelizes. Each
// sub-benchmark reports the summed secure-comparison time and the overall
// per-instance runtime; compare "par=1" (the original sequential protocol)
// against the higher settings.
func BenchmarkArgmaxParallelism(b *testing.B) {
	levels := []int{1, 2, 4, runtime.NumCPU()}
	seen := make(map[int]bool)
	for _, par := range levels {
		if seen[par] {
			continue
		}
		seen[par] = true
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			var compare, overall time.Duration
			for i := 0; i < b.N; i++ {
				res, err := experiments.ProtocolBench(experiments.ProtocolBenchConfig{
					Instances: 1, Users: 10, Classes: 10,
					Seed: int64(i + 1), ForceConsensus: true,
					Parallelism: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				overall += res.Overall
				for _, s := range res.Steps {
					if s.Step == protocol.StepCompare1 || s.Step == protocol.StepCompare2 {
						compare += s.AvgTime
					}
				}
			}
			b.ReportMetric(float64(compare.Milliseconds())/float64(b.N), "compare-ms/inst")
			b.ReportMetric(float64(overall.Milliseconds())/float64(b.N), "overall-ms/inst")
		})
	}
}

// BenchmarkProtocolJSON runs the full protocol benchmark and, when the
// BENCH_JSON environment variable names a path, writes the machine-readable
// record there (`make bench` points it at results/BENCH_protocol.json). The
// record carries ns/op, bytes/op, the per-phase breakdown under both argmax
// strategies (tournament primary, all-pairs oracle), the parallelism
// setting and the CPU count.
func BenchmarkProtocolJSON(b *testing.B) {
	var last *experiments.ProtocolBenchResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.ProtocolBench(experiments.ProtocolBenchConfig{
			Instances: 1, Users: 10, Classes: 10,
			Seed: int64(i + 1), ForceConsensus: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last == nil {
		return
	}
	b.ReportMetric(float64(last.Overall.Nanoseconds()), "protocol-ns/inst")
	if path := os.Getenv("BENCH_JSON"); path != "" {
		b.StopTimer()
		oracle, err := experiments.ProtocolBench(experiments.ProtocolBenchConfig{
			Instances: 1, Users: 10, Classes: 10,
			Seed: 1, ForceConsensus: true,
			ArgmaxStrategy: protocol.StrategyAllPairs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteBenchJSON(path, last, oracle); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// BenchmarkArgmaxStrategy ablates the tournament argmax against the
// all-pairs oracle across class counts: the tournament runs K-1 comparisons
// in ceil(log2(K)) batched round trips where all-pairs runs K(K-1) in as
// many exchanges, so the gap widens with K. Each sub-benchmark reports the
// summed secure-comparison time and the overall per-instance runtime.
func BenchmarkArgmaxStrategy(b *testing.B) {
	for _, strat := range []string{protocol.StrategyAllPairs, protocol.StrategyTournament} {
		for _, classes := range []int{5, 10, 32} {
			b.Run(fmt.Sprintf("%s/C=%d", strat, classes), func(b *testing.B) {
				var compare, overall time.Duration
				for i := 0; i < b.N; i++ {
					res, err := experiments.ProtocolBench(experiments.ProtocolBenchConfig{
						Instances: 1, Users: 10, Classes: classes,
						Seed: int64(i + 1), ForceConsensus: true,
						ArgmaxStrategy: strat,
					})
					if err != nil {
						b.Fatal(err)
					}
					overall += res.Overall
					for _, s := range res.Steps {
						if s.Step == protocol.StepCompare1 || s.Step == protocol.StepCompare2 {
							compare += s.AvgTime
						}
					}
				}
				b.ReportMetric(float64(compare.Milliseconds())/float64(b.N), "compare-ms/inst")
				b.ReportMetric(float64(overall.Milliseconds())/float64(b.N), "overall-ms/inst")
			})
		}
	}

	// Packed arm: slot-packed submissions against the unpacked twin at the
	// same 256-bit key size (packing needs slot room the 64-bit prototype
	// default lacks). The comparison phases are identical work in both
	// modes — the packed runs add only the blinded unpack exchange — so
	// the reported gap isolates the packing overhead on the servers.
	for _, packed := range []bool{false, true} {
		b.Run(fmt.Sprintf("tournament-256/packed=%v/C=10", packed), func(b *testing.B) {
			var overall time.Duration
			for i := 0; i < b.N; i++ {
				res, err := experiments.ProtocolBench(experiments.ProtocolBenchConfig{
					Instances: 1, Users: 10, Classes: 10,
					Seed: int64(i + 1), ForceConsensus: true,
					PaillierBits: 256, Packing: packed,
				})
				if err != nil {
					b.Fatal(err)
				}
				overall += res.Overall
				if i == 0 {
					b.ReportMetric(float64(res.UserToServerBytes), "user-bytes/inst")
				}
			}
			b.ReportMetric(float64(overall.Milliseconds())/float64(b.N), "overall-ms/inst")
		})
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on the
// protocol hot path: a full query instance with metric collection off, on,
// and on with the durable event journal writing every query to disk. The
// acceptance bound for both enabled variants is <= 5% over metrics-off
// (see results/obs_overhead.txt).
func BenchmarkObsOverhead(b *testing.B) {
	for _, tc := range []struct {
		name    string
		metrics bool
		journal bool
	}{
		{"metrics-on", true, false},
		{"metrics-off", false, false},
		{"journal-on", true, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prev := obs.Default.Enabled()
			obs.Default.SetEnabled(tc.metrics)
			defer obs.Default.SetEnabled(prev)
			cfg := DefaultConfig(4)
			cfg.Classes = 4
			cfg.Sigma1, cfg.Sigma2 = 0, 0
			cfg.Seed = 42
			if tc.journal {
				cfg.JournalPath = filepath.Join(b.TempDir(), "bench.jsonl")
			}
			engine, err := NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer engine.Close()
			votes := [][]float64{
				{0, 0, 1, 0}, {0, 0, 1, 0}, {0, 0, 1, 0}, {1, 0, 0, 0},
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.LabelInstance(ctx, votes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benches (DESIGN.md) ---

// BenchmarkPaillierEnc measures one fresh-nonce Paillier encryption with the
// pool disabled — the fixed-base kernel's Paillier target. Guarded by
// scripts/bench_guard.sh via the paillier_enc_ns record in
// results/BENCH_protocol.json.
func BenchmarkPaillierEnc(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	key, err := paillier.GenerateKey(rng, 512)
	if err != nil {
		b.Fatal(err)
	}
	pk := key.Public()
	msg := big.NewInt(123456)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Encrypt(rng, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDGKEnc measures one fresh-nonce DGK encryption in the protocol's
// default parameter regime — the fixed-base kernel's DGK target. Guarded by
// scripts/bench_guard.sh via the dgk_enc_ns record in
// results/BENCH_protocol.json.
func BenchmarkDGKEnc(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	key, err := dgk.GenerateKey(rng, dgk.Params{NBits: 192, TBits: 40, U: 1009, L: 56})
	if err != nil {
		b.Fatal(err)
	}
	pk := key.Public()
	msg := big.NewInt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Encrypt(rng, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaillierPoolOnOff isolates the paper's pre-generated randomness
// table optimization (§VI-A): pooled vs on-demand encryption.
func BenchmarkPaillierPoolOnOff(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	key, err := paillier.GenerateKey(rng, 512)
	if err != nil {
		b.Fatal(err)
	}
	msg := big.NewInt(123456)

	b.Run("on-demand", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := key.Encrypt(rng, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		pool, err := paillier.NewNoncePool(rand.New(rand.NewSource(2)), key.Public(), 256, 2)
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Encrypt(ctx, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPaillierCRT isolates the CRT decryption speedup.
func BenchmarkPaillierCRT(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	key, err := paillier.GenerateKey(rng, 512)
	if err != nil {
		b.Fatal(err)
	}
	c, err := key.Encrypt(rng, big.NewInt(987654))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("crt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := key.Decrypt(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := key.DecryptSlow(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDGKBitLength shows the secure-comparison cost scaling with the
// compared bit length, the dominant end-to-end cost per the paper's
// Table I discussion.
func BenchmarkDGKBitLength(b *testing.B) {
	for _, l := range []int{16, 32, 56} {
		b.Run(bitName(l), func(b *testing.B) {
			params := dgk.Params{NBits: 192, TBits: 40, U: 1009, L: l}
			rng := rand.New(rand.NewSource(4))
			key, err := dgk.GenerateKey(rng, params)
			if err != nil {
				b.Fatal(err)
			}
			a := big.NewInt(12345 % (1 << l))
			v := big.NewInt(54321 % (1 << l))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				connA, connB := transport.Pair()
				errCh := make(chan error, 1)
				go func() {
					_, err := key.Public().CompareA(context.Background(), rand.New(rand.NewSource(5)), connA, a)
					errCh <- err
				}()
				if _, err := key.CompareB(context.Background(), rand.New(rand.NewSource(6)), connB, v); err != nil {
					b.Fatal(err)
				}
				if err := <-errCh; err != nil {
					b.Fatal(err)
				}
				connA.Close()
				connB.Close()
			}
		})
	}
}

// bitName renders a bit-length sub-benchmark name.
func bitName(l int) string {
	return "L=" + string(rune('0'+l/10)) + string(rune('0'+l%10))
}

// BenchmarkDGKPoolProtocol ablates the randomness-table optimization
// applied to the protocol's dominant cost: S2's DGK bit encryptions.
func BenchmarkDGKPoolProtocol(b *testing.B) {
	for _, pooled := range []bool{false, true} {
		name := "plain"
		if pooled {
			name = "pooled"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.ProtocolBenchConfig{
					Instances: 1, Users: 6, Classes: 6,
					Seed: int64(i + 1), ForceConsensus: true,
					UseDGKPool: pooled,
				}
				if _, err := experiments.ProtocolBench(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransportSegmentation isolates the paper's 18-digit decimal
// segmentation workaround vs raw binary framing.
func BenchmarkTransportSegmentation(b *testing.B) {
	val := new(big.Int).Lsh(big.NewInt(1), 1024)
	val.Sub(val, big.NewInt(12345))
	b.Run("segmented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			segs, err := transport.Segment(val)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := transport.Recompose(segs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bytes := val.Bytes()
			_ = new(big.Int).SetBytes(bytes)
		}
	})
}

// BenchmarkKeySizes measures the full protocol instance cost across
// Paillier key sizes (the paper prototypes with 64-bit keys).
func BenchmarkKeySizes(b *testing.B) {
	for _, bits := range []int{64, 256, 512} {
		b.Run(keyName(bits), func(b *testing.B) {
			cfg := DefaultConfig(4)
			cfg.Classes = 4
			cfg.Sigma1, cfg.Sigma2 = 0, 0
			cfg.PaillierBits = bits
			cfg.Seed = int64(bits)
			engine, err := NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			votes := [][]float64{
				{0, 0, 1, 0}, {0, 0, 1, 0}, {0, 0, 1, 0}, {1, 0, 0, 0},
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.LabelInstance(ctx, votes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// keyName renders a key-size sub-benchmark name.
func keyName(bits int) string {
	switch bits {
	case 64:
		return "paillier-64"
	case 256:
		return "paillier-256"
	case 512:
		return "paillier-512"
	default:
		return "paillier-other"
	}
}
