package privconsensus_test

import (
	"context"
	"fmt"

	privconsensus "github.com/privconsensus/privconsensus"
)

// ExampleEngine_LabelInstance labels one query where 4 of 5 users agree.
func ExampleEngine_LabelInstance() {
	cfg := privconsensus.DefaultConfig(5)
	cfg.Classes = 4
	cfg.Sigma1, cfg.Sigma2 = 0, 0 // noise-free for a deterministic example
	cfg.Seed = 1
	engine, err := privconsensus.NewEngine(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	oneHot := func(label int) []float64 {
		v := make([]float64, cfg.Classes)
		v[label] = 1
		return v
	}
	votes := [][]float64{oneHot(2), oneHot(2), oneHot(2), oneHot(2), oneHot(0)}
	out, err := engine.LabelInstance(context.Background(), votes)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("consensus=%v label=%d\n", out.Consensus, out.Label)
	// Output: consensus=true label=2
}

// ExampleAccountant tracks the privacy spend of a labeling workload.
func ExampleAccountant() {
	acc := privconsensus.NewAccountant()
	for q := 0; q < 100; q++ {
		_ = acc.RecordQuery(8) // every query pays the SVT check
	}
	for r := 0; r < 60; r++ {
		_ = acc.RecordRelease(8) // released labels pay report-noisy-max
	}
	eps, _, _ := acc.Epsilon(1e-6)
	fmt.Printf("eps = %.2f\n", eps)
	// Output: eps = 28.95
}

// ExampleQueryEpsilon evaluates the paper's Theorem 5 for one query.
func ExampleQueryEpsilon() {
	eps, _ := privconsensus.QueryEpsilon(4, 2, 1e-6)
	fmt.Printf("single-query eps = %.3f\n", eps)
	// Output: single-query eps = 5.950
}
