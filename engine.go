package privconsensus

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/fixedpoint"
	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Config parameterizes an Engine.
type Config struct {
	// Classes is the number of labels K.
	Classes int
	// Users is the number of voting parties.
	Users int
	// ThresholdFrac is the consensus threshold as a fraction of users
	// (the paper defaults to 0.6: consensus requires 60% agreement).
	ThresholdFrac float64
	// Sigma1 is the threshold-check (SVT) noise deviation in votes.
	Sigma1 float64
	// Sigma2 is the Report-Noisy-Maximum deviation in votes.
	Sigma2 float64
	// PaillierBits sizes the servers' Paillier keys (paper prototype: 64;
	// production: >= 2048). Zero selects the default 64.
	PaillierBits int
	// DGKBits sizes the DGK comparison modulus. Zero selects a fast
	// simulation default (192); production should use >= 1024.
	DGKBits int
	// Parallelism bounds the workers used for homomorphic aggregation,
	// Paillier re-randomization, and concurrent DGK comparisons over
	// multiplexed transport streams. Zero uses runtime.NumCPU; 1 runs the
	// original sequential single-stream protocol byte for byte. The value
	// changes the wire format (multiplexed vs plain), so in a two-process
	// deployment both servers must agree on whether it is 1.
	Parallelism int
	// ArgmaxStrategy selects how the two argmax phases schedule their DGK
	// comparisons: "tournament" (the default for empty) runs a blinded
	// single-elimination bracket with one batched exchange per level,
	// "allpairs" runs the original all-pairs schedule byte-for-byte. The
	// strategy changes the wire format, so in a two-process deployment
	// both servers must agree.
	ArgmaxStrategy string
	// Seed, when non-zero, makes the engine fully deterministic (for
	// tests and reproducible simulations). Zero uses crypto/rand.
	Seed int64
	// MaxQueryRetries bounds how many times LabelBatch re-runs a query
	// instance that failed with a transient error before recording it as
	// failed and moving on to the rest of the batch. 0 disables retries
	// (a failed query is still recorded and the batch continues).
	MaxQueryRetries int
	// Quorum enables partial participation: the minimum number of users a
	// query needs. A value in (0, 1) is a fraction of Users (rounded up);
	// >= 1 an absolute count. With Quorum set, a nil row in the votes grid
	// marks an absent user and the query runs over whoever voted; a query
	// below quorum fails with ErrQuorumNotMet. 0 (the default) requires
	// full participation, as before.
	Quorum float64
	// AbsoluteThreshold fixes the consensus threshold at
	// ThresholdFrac×Users votes regardless of how many users participate.
	// The default (false) scales it to ThresholdFrac×participants, keeping
	// the paper's "fraction of voters" semantics under dropout. The two
	// modes agree at full participation.
	AbsoluteThreshold bool
	// AccountantPath, when non-empty, makes the engine's privacy accountant
	// durable: its state is reloaded from this file by NewEngine and
	// atomically rewritten after every recorded spend, so the cumulative
	// (ε, δ) budget survives process restarts.
	AccountantPath string
	// JournalPath, when non-empty, appends every query's phase spans,
	// annotations and privacy-accountant spends to a hash-chained JSONL
	// event journal at this path (see internal/obs and cmd/trace). Close
	// the engine with Engine.Close when set.
	JournalPath string
}

// ErrQuorumNotMet reports a query released with fewer participants than
// Config.Quorum. It is terminal for the query — retrying cannot conjure the
// missing submissions — but the rest of a batch still completes.
var ErrQuorumNotMet = protocol.ErrQuorumNotMet

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig(users int) Config {
	return Config{
		Classes:       10,
		Users:         users,
		ThresholdFrac: 0.6,
		Sigma1:        4,
		Sigma2:        2,
	}
}

// Outcome is the protocol result for one query instance.
type Outcome struct {
	// Consensus reports whether the highest noisy vote cleared the
	// threshold.
	Consensus bool
	// Label is the released label (argmax of the noisy votes), or -1
	// when no consensus was reached.
	Label int
	// Participants is how many users' votes the query aggregated; Dropped
	// is how many configured users were absent. Participants == Users and
	// Dropped == 0 under full participation.
	Participants int
	Dropped      int
}

// Submission is a user's encrypted contribution for one query instance.
// It is opaque: the halves are encrypted under different server keys, so
// neither server alone learns the user's votes.
type Submission struct {
	inner *protocol.Submission
}

// Role identifies a protocol server.
type Role int

// The two non-colluding servers of the protocol.
const (
	RoleS1 Role = iota + 1
	RoleS2
)

// Engine holds the key material and configuration for running the private
// consensus protocol. Create one with NewEngine; an Engine is safe for
// concurrent use once constructed.
type Engine struct {
	cfg   Config
	pcfg  protocol.Config
	keys  *protocol.Keys
	rngMu sync.Mutex
	rng   io.Reader
	noise *mrand.Rand

	queries   atomic.Int64
	traceMu   sync.Mutex
	lastTrace *obs.QueryTrace

	// acct is the durable privacy accountant (nil unless AccountantPath is
	// set); LabelBatch records every spend into it.
	acct *Accountant

	// journal is the durable event journal (nil unless JournalPath is set);
	// every query's trace and every accountant spend is appended to it.
	journal *obs.Journal
}

// NewEngine validates cfg and generates all server key material.
func NewEngine(cfg Config) (*Engine, error) {
	pcfg, err := toProtocolConfig(cfg)
	if err != nil {
		return nil, err
	}
	var rng io.Reader = rand.Reader
	noiseSeed := int64(0)
	if cfg.Seed != 0 {
		rng = mrand.New(mrand.NewSource(cfg.Seed))
		noiseSeed = cfg.Seed + 1
	} else {
		var b [8]byte
		if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
			return nil, fmt.Errorf("privconsensus: seed noise rng: %w", err)
		}
		for _, x := range b {
			noiseSeed = noiseSeed<<8 | int64(x)
		}
	}
	keys, err := protocol.GenerateKeys(rng, pcfg)
	if err != nil {
		return nil, fmt.Errorf("privconsensus: generate keys: %w", err)
	}
	var acct *Accountant
	if cfg.AccountantPath != "" {
		if acct, err = NewAccountantAt(cfg.AccountantPath); err != nil {
			return nil, err
		}
	}
	var journal *obs.Journal
	if cfg.JournalPath != "" {
		journal, err = obs.OpenJournal(cfg.JournalPath, obs.JournalOptions{Role: "engine"})
		if err != nil {
			return nil, err
		}
		id, err := mintEngineTraceID(cfg.Seed)
		if err != nil {
			journal.Close()
			return nil, err
		}
		if err := journal.BeginTrace(id); err != nil {
			journal.Close()
			return nil, err
		}
	}
	return &Engine{
		cfg:     cfg,
		pcfg:    pcfg,
		keys:    keys,
		rng:     rng,
		noise:   mrand.New(mrand.NewSource(noiseSeed)),
		acct:    acct,
		journal: journal,
	}, nil
}

// mintEngineTraceID draws the in-process run's trace identity:
// deterministic from a distinct stream when seeded, crypto/rand otherwise.
func mintEngineTraceID(seed int64) (string, error) {
	var rng io.Reader = rand.Reader
	if seed != 0 {
		rng = mrand.New(mrand.NewSource(seed + 8191))
	}
	var b [8]byte
	for {
		if _, err := io.ReadFull(rng, b[:]); err != nil {
			return "", fmt.Errorf("privconsensus: mint trace id: %w", err)
		}
		id := uint64(0)
		for _, x := range b {
			id = id<<8 | uint64(x)
		}
		if id &^= 1 << 63; id != 0 {
			return fmt.Sprintf("t-%016x", id), nil
		}
	}
}

// Close releases the engine's durable resources: the event journal and
// the accountant's exclusive state lock. Safe to call on an engine
// without either, and idempotent.
func (e *Engine) Close() error {
	err := e.journal.Close()
	if e.acct != nil {
		if cerr := e.acct.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// toProtocolConfig maps the public config onto the internal protocol
// parameters.
func toProtocolConfig(cfg Config) (protocol.Config, error) {
	if cfg.Users < 1 {
		return protocol.Config{}, errors.New("privconsensus: need at least 1 user")
	}
	if cfg.Quorum < 0 {
		return protocol.Config{}, fmt.Errorf("privconsensus: negative quorum %g", cfg.Quorum)
	}
	pcfg := protocol.DefaultConfig(cfg.Users)
	if cfg.Classes > 0 {
		pcfg.Classes = cfg.Classes
	}
	pcfg.ThresholdFrac = cfg.ThresholdFrac
	pcfg.AbsoluteThreshold = cfg.AbsoluteThreshold
	pcfg.Sigma1 = cfg.Sigma1
	pcfg.Sigma2 = cfg.Sigma2
	if cfg.PaillierBits > 0 {
		pcfg.PaillierBits = cfg.PaillierBits
	}
	if cfg.DGKBits > 0 {
		pcfg.DGK = dgk.Params{NBits: cfg.DGKBits, TBits: 40, U: 1009, L: 56}
	}
	pcfg.Parallelism = cfg.Parallelism
	pcfg.ArgmaxStrategy = cfg.ArgmaxStrategy
	if err := pcfg.Validate(); err != nil {
		return protocol.Config{}, err
	}
	return pcfg, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Accountant returns the engine's durable privacy accountant, or nil when
// Config.AccountantPath is unset (LabelBatch then accounts per batch).
func (e *Engine) Accountant() *Accountant { return e.acct }

// SubmissionFor builds user `user`'s encrypted submission for one query.
// votes is the user's per-class prediction: a one-hot indicator or a
// probability vector; each entry must be in [0, 1].
func (e *Engine) SubmissionFor(user int, votes []float64) (*Submission, error) {
	if len(votes) != e.pcfg.Classes {
		return nil, fmt.Errorf("privconsensus: votes length %d != classes %d", len(votes), e.pcfg.Classes)
	}
	units := make([]*big.Int, len(votes))
	for i, v := range votes {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("privconsensus: vote %g for class %d outside [0, 1]", v, i)
		}
		u, err := fixedpoint.EncodeUnits(v)
		if err != nil {
			return nil, fmt.Errorf("privconsensus: encode vote for class %d: %w", i, err)
		}
		units[i] = big.NewInt(u)
	}
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	sub, _, err := protocol.BuildSubmission(e.rng, e.noise, e.pcfg, user, units,
		e.keys.S1Paillier.Public(), e.keys.S2Paillier.Public())
	if err != nil {
		return nil, err
	}
	return &Submission{inner: sub}, nil
}

// LabelInstance runs the full two-server protocol in-process for one query
// instance: votes[user][class] are every user's predictions. Both servers
// execute concurrently over an in-memory transport. With Config.Quorum set,
// a nil row marks an absent user and the query runs over whoever voted;
// below-quorum queries fail with ErrQuorumNotMet.
func (e *Engine) LabelInstance(ctx context.Context, votes [][]float64) (*Outcome, error) {
	subs, err := e.submissionsFor(votes)
	if err != nil {
		return nil, err
	}
	out, _, err := e.labelInstance(ctx, votes, subs, nil)
	return out, err
}

// submissionsFor encrypts the votes grid, treating nil rows as absent users
// when partial participation is enabled, and enforces the quorum.
func (e *Engine) submissionsFor(votes [][]float64) ([]*Submission, error) {
	if len(votes) != e.pcfg.Users {
		return nil, fmt.Errorf("privconsensus: got votes from %d users, want %d", len(votes), e.pcfg.Users)
	}
	subs := make([]*Submission, len(votes))
	participants := 0
	for u, v := range votes {
		if v == nil && e.cfg.Quorum > 0 {
			continue // absent user
		}
		sub, err := e.SubmissionFor(u, v)
		if err != nil {
			return nil, fmt.Errorf("privconsensus: user %d: %w", u, err)
		}
		subs[u] = sub
		participants++
	}
	if q := e.quorumCount(); participants < q {
		return nil, fmt.Errorf("privconsensus: %d of %d users voted, quorum is %d: %w",
			participants, e.pcfg.Users, q, ErrQuorumNotMet)
	}
	return subs, nil
}

// quorumCount resolves Config.Quorum against the user count: (0, 1) is a
// fraction rounded up, >= 1 an absolute count, clamped to [1, Users]. With
// Quorum unset every user must vote.
func (e *Engine) quorumCount() int {
	q := e.pcfg.Users
	switch {
	case e.cfg.Quorum <= 0:
	case e.cfg.Quorum < 1:
		q = int(math.Ceil(e.cfg.Quorum * float64(e.pcfg.Users)))
	default:
		q = int(math.Round(e.cfg.Quorum))
	}
	if q < 1 {
		q = 1
	}
	if q > e.pcfg.Users {
		q = e.pcfg.Users
	}
	return q
}

// StepStats reports one protocol step's cost, mirroring the rows of the
// paper's Tables I and II.
type StepStats struct {
	// Step is the Alg. 5 step label, e.g. "secure-comparison(4)".
	Step string
	// BytesSent is the traffic S1 sent to S2 during the step.
	BytesSent int64
	// BytesReceived is the traffic S1 received from S2.
	BytesReceived int64
	// Messages counts frames sent by S1.
	Messages int64
	// Elapsed is the wall time S1 spent in the step.
	Elapsed time.Duration
}

// LabelInstanceMetered is LabelInstance plus per-step time and traffic
// accounting, for cost analysis of a deployment.
func (e *Engine) LabelInstanceMetered(ctx context.Context, votes [][]float64) (*Outcome, []StepStats, error) {
	subs, err := e.submissionsFor(votes)
	if err != nil {
		return nil, nil, err
	}
	meter := transport.NewMeter()
	out, stats, err := e.labelInstance(ctx, votes, subs, meter)
	return out, stats, err
}

// labelInstance runs both servers over an in-memory transport. statsWanted
// distinguishes the metered entry point; a meter is created regardless so
// every query yields a full trace (see LastTrace).
func (e *Engine) labelInstance(ctx context.Context, votes [][]float64, subs []*Submission, meter *transport.Meter) (*Outcome, []StepStats, error) {
	statsWanted := meter != nil
	if meter == nil {
		meter = transport.NewMeter()
	}
	qn := e.queries.Add(1)
	tracer := obs.NewTracer(fmt.Sprintf("q%d", qn))
	present := 0
	for _, s := range subs {
		if s != nil {
			present++
		}
	}
	tracer.SetParticipants(present, e.pcfg.Users-present)
	// Op counters are process-wide; in this in-process simulation the
	// watched deltas cover both servers' work combined.
	paillier.WatchOps(tracer)
	dgk.WatchOps(tracer)
	mathutil.WatchOps(tracer)

	connA, connB := transport.Pair()
	var c1, c2 transport.Conn = connA, connB
	if e.pcfg.Parallelism == 1 {
		// Sequential mode: a step-labelled wrapper attributes traffic as it
		// crosses the wire. With multiplexing the protocol meters each
		// stream itself (attributing receives when the owning comparison
		// consumes them), so the conns stay raw to avoid double counting.
		c1 = transport.Metered(connA, meter, "secure-sum(2)")
		c2 = transport.Metered(connB, nil, "secure-sum(2)")
	}
	defer c1.Close()
	defer c2.Close()

	type result struct {
		out *Outcome
		err error
	}
	ch := make(chan result, 1)
	go func() {
		// Only S1's run carries the tracer: the spans of one query must
		// come from a single sequential protocol execution.
		out, err := e.runServerMetered(obs.WithTracer(ctx, tracer), RoleS1, c1, subs, meter)
		ch <- result{out, err}
	}()
	out2, err := e.runServer(ctx, RoleS2, c2, subs)
	r1 := <-ch

	finishTrace := func(runErr error) {
		meter.FillTrace(tracer)
		switch {
		case runErr != nil:
			tracer.Finish("error", runErr)
		case out2 != nil && out2.Consensus:
			tracer.Finish(fmt.Sprintf("consensus label=%d", out2.Label), nil)
		default:
			tracer.Finish("no-consensus", nil)
		}
		qt := tracer.Trace()
		e.traceMu.Lock()
		e.lastTrace = qt
		e.traceMu.Unlock()
		obs.DefaultTraces.Add(qt)
		// Journal append failures must not fail the query; the outcome is
		// already decided.
		e.journal.AppendTrace(int(qn)-1, 1, qt) //nolint:errcheck
	}

	if err != nil {
		err = fmt.Errorf("privconsensus: S2: %w", err)
		finishTrace(err)
		return nil, nil, err
	}
	if r1.err != nil {
		err = fmt.Errorf("privconsensus: S1: %w", r1.err)
		finishTrace(err)
		return nil, nil, err
	}
	if *r1.out != *out2 {
		err = fmt.Errorf("privconsensus: servers disagree: %+v vs %+v", r1.out, out2)
		finishTrace(err)
		return nil, nil, err
	}
	finishTrace(nil)
	var stats []StepStats
	if statsWanted {
		for _, s := range meter.Snapshot() {
			stats = append(stats, StepStats{
				Step:          s.Step,
				BytesSent:     s.BytesSent,
				BytesReceived: s.BytesReceived,
				Messages:      s.MsgsSent,
				Elapsed:       s.Elapsed,
			})
		}
	}
	return out2, stats, nil
}

// LastTrace returns the QueryTrace of the most recent in-process query run
// by this engine (LabelInstance, LabelInstanceMetered or LabelBatch), or
// nil before the first query. The returned trace is a private copy.
func (e *Engine) LastTrace() *obs.QueryTrace {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	return e.lastTrace
}

// Stats returns a sorted snapshot of every process-wide metric series
// (Paillier/DGK operation counts, pool hit rates, transport traffic,
// per-phase timings) — the same numbers the /metrics endpoint exposes,
// without HTTP.
func (e *Engine) Stats() []obs.Point {
	return obs.Default.Snapshot()
}

// QueryFailure records one batch query that could not be completed.
type QueryFailure struct {
	// Query is the index into the batch.
	Query int
	// Attempts is how many times the query was tried (1 = no retries).
	Attempts int
	// Err is the last attempt's error.
	Err error
}

// BatchResult pairs each query's outcome with the cumulative privacy spend
// of the batch.
type BatchResult struct {
	// Outcomes has one entry per batch query, in order. A failed query
	// (see Failed) carries the placeholder {Consensus: false, Label: -1}.
	Outcomes []Outcome
	// Epsilon is the total (ε, δ=1e-6)-DP spend per the paper's
	// accounting: every query pays SVT, released labels additionally pay
	// RNM. With Config.AccountantPath set the accountant is durable and
	// Epsilon covers everything it ever recorded, including prior runs.
	Epsilon float64
	// Released counts the queries that reached consensus.
	Released int
	// Participants is the total number of user votes aggregated across the
	// batch; Dropped is the total excluded (absent rows, including every
	// configured user of a quorum-missed query). Both mirror the
	// per-query counts in Outcomes.
	Participants int
	Dropped      int
	// Failed lists the queries that exhausted the retry budget
	// (Config.MaxQueryRetries) or missed the quorum (their Err unwraps to
	// ErrQuorumNotMet). The rest of the batch still completes.
	Failed []QueryFailure
}

var (
	engineRetries = obs.Default.Counter("retries_total",
		"Retry attempts, by role and scope.",
		obs.L("role", "engine"), obs.L("scope", "instance"))
	engineQueriesFailed = obs.Default.Counter("queries_failed_total",
		"Query instances that failed after exhausting the retry budget.",
		obs.L("role", "engine"))
)

// LabelBatch runs LabelInstance for every query in votes (votes[q][user]
// [class]) and tracks the privacy spend with the built-in accountant (the
// durable one when Config.AccountantPath is set). A query that fails with a
// transient error is retried up to Config.MaxQueryRetries times; one that
// exhausts the budget, fails fatally, or misses the quorum
// (ErrQuorumNotMet, never retried) is recorded in BatchResult.Failed with a
// placeholder outcome while the rest of the batch completes. Failed queries
// conservatively still pay their SVT privacy cost — the protocol may have
// consumed the noisy threshold comparison before the failure. LabelBatch
// itself errors only on structural problems: a cancelled context or
// accountant failure.
func (e *Engine) LabelBatch(ctx context.Context, votes [][][]float64) (*BatchResult, error) {
	res := &BatchResult{Outcomes: make([]Outcome, 0, len(votes))}
	acc := e.acct
	if acc == nil {
		acc = NewAccountant()
	}
	for q, instance := range votes {
		out, attempts, err := e.labelWithRetry(ctx, instance)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("privconsensus: query %d: %w", q, err)
			}
			if !errors.Is(err, ErrQuorumNotMet) {
				engineQueriesFailed.Inc()
			}
			res.Failed = append(res.Failed, QueryFailure{Query: q, Attempts: attempts, Err: err})
			out = &Outcome{Consensus: false, Label: -1, Dropped: e.pcfg.Users}
		}
		res.Outcomes = append(res.Outcomes, *out)
		res.Participants += out.Participants
		res.Dropped += out.Dropped
		if e.cfg.Sigma1 > 0 {
			if err := acc.RecordQuery(e.cfg.Sigma1); err != nil {
				return nil, err
			}
			e.journalSpend(q, fmt.Sprintf("svt sigma=%g", e.cfg.Sigma1))
		}
		if out.Consensus {
			res.Released++
			if e.cfg.Sigma2 > 0 {
				if err := acc.RecordRelease(e.cfg.Sigma2); err != nil {
					return nil, err
				}
				e.journalSpend(q, fmt.Sprintf("rnm sigma=%g", e.cfg.Sigma2))
			}
		}
	}
	eps, _, err := acc.Epsilon(1e-6)
	if err != nil {
		return nil, err
	}
	res.Epsilon = eps
	return res, nil
}

// journalSpend records one privacy-accountant spend in the event journal
// (no-op without a journal; append failures never fail the batch — the
// spend itself is already durably recorded by the accountant).
func (e *Engine) journalSpend(query int, note string) {
	e.journal.Append(obs.Event{Type: obs.EventSpend, Instance: query, Note: note}) //nolint:errcheck
}

// labelWithRetry runs one query instance, retrying transient failures
// within the configured budget. It returns the attempts used alongside the
// outcome or final error.
func (e *Engine) labelWithRetry(ctx context.Context, instance [][]float64) (*Outcome, int, error) {
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= e.cfg.MaxQueryRetries; attempt++ {
		if attempt > 0 {
			engineRetries.Inc()
		}
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		attempts = attempt + 1
		out, err := e.LabelInstance(ctx, instance)
		if err == nil {
			return out, attempts, nil
		}
		lastErr = err
		if ctx.Err() != nil || !transport.IsRetryable(err) {
			break
		}
	}
	return nil, attempts, lastErr
}

// RunServer executes one server's role over an established network
// connection (e.g. TCP), for deployments where S1 and S2 are separate
// processes. subs must contain every user's submission in user order.
func (e *Engine) RunServer(ctx context.Context, role Role, conn net.Conn, subs []*Submission) (*Outcome, error) {
	return e.runServer(ctx, role, transport.NewTCPConn(conn), subs)
}

// runServer dispatches to the protocol engine over any transport.
func (e *Engine) runServer(ctx context.Context, role Role, conn transport.Conn, subs []*Submission) (*Outcome, error) {
	return e.runServerMetered(ctx, role, conn, subs, nil)
}

// runServerMetered is runServer with optional step accounting.
func (e *Engine) runServerMetered(ctx context.Context, role Role, conn transport.Conn, subs []*Submission, meter *transport.Meter) (*Outcome, error) {
	halves := make([]protocol.SubmissionHalf, len(subs))
	for i, s := range subs {
		if s == nil || s.inner == nil {
			if e.cfg.Quorum > 0 {
				continue // absent user: a zero half is skipped by the protocol
			}
			return nil, fmt.Errorf("privconsensus: nil submission at index %d", i)
		}
		if role == RoleS1 {
			halves[i] = s.inner.ToS1
		} else {
			halves[i] = s.inner.ToS2
		}
	}
	e.rngMu.Lock()
	var seed int64
	if r, ok := e.rng.(*mrand.Rand); ok {
		seed = r.Int63()
	}
	e.rngMu.Unlock()
	var rng io.Reader = rand.Reader
	if seed != 0 {
		rng = mrand.New(mrand.NewSource(seed))
	}

	var (
		out *protocol.Outcome
		err error
	)
	switch role {
	case RoleS1:
		out, err = protocol.RunS1(ctx, rng, e.pcfg, e.keys.ForS1(), conn, halves, meter)
	case RoleS2:
		out, err = protocol.RunS2(ctx, rng, e.pcfg, e.keys.ForS2(), conn, halves, meter)
	default:
		return nil, fmt.Errorf("privconsensus: unknown role %d", int(role))
	}
	if err != nil {
		return nil, err
	}
	return &Outcome{Consensus: out.Consensus, Label: out.Label,
		Participants: out.Participants, Dropped: e.pcfg.Users - out.Participants}, nil
}
