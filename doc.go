// Package privconsensus is a Go implementation of the private consensus
// protocol of Xiang, Wang, Wang and Li, "Achieving Consensus in
// Privacy-Preserving Decentralized Learning" (ICDCS 2020).
//
// The protocol lets a set of mutually untrusting users label public data
// for an aggregator by majority vote, revealing nothing but the label with
// the highest noisy vote — and only when that vote clears a consensus
// threshold. It composes additive secret sharing across two non-colluding
// servers, Paillier homomorphic aggregation, a Blind-and-Permute
// sub-protocol that hides class identities, DGK secure comparisons for the
// arg-max and threshold checks, and distributed Gaussian noise that makes
// the released label differentially private (Sparse Vector Technique +
// Report Noisy Maximum, accounted in Rényi DP).
//
// Three layers of API are exposed:
//
//   - Engine runs the full cryptographic protocol (Alg. 5) for individual
//     query instances, in-process or across real connections.
//   - Accountant / PlanNoise handle the Rényi-DP privacy arithmetic of
//     Theorem 5.
//   - RunPATE simulates the end-to-end semi-supervised knowledge-transfer
//     pipeline (teachers, consensus labeling, student training) on
//     synthetic datasets, reproducing the paper's accuracy experiments.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package privconsensus
